//! Semantic optimization passes on rewritten (plain SQL) queries:
//! conversion / client-presentation push-up (§4.2.1) and aggregation
//! distribution (§4.2.2).
//!
//! Both passes pattern-match the canonical conversion calls
//! `fromUniversal(toUniversal(x, ttid), C)` produced by the
//! [`canonical`](crate::canonical) rewriter and transform them into cheaper
//! but provably equivalent forms, using the algebraic properties recorded in
//! the catalog ([`ConversionClass`], Table 2 of the paper).

use mtcatalog::{AggregateKind, Catalog, ConversionClass};
use mtsql::ast::*;
use mtsql::visit::collect_aggregate_calls;

use crate::context::{is_constant_expr, match_conversion_call, ConversionCall};

// ---------------------------------------------------------------------------
// Conversion push-up (o2)
// ---------------------------------------------------------------------------

/// Apply conversion push-up and client-presentation push-up to a query
/// (recursively, including sub-queries).
///
/// Two patterns are transformed in WHERE / HAVING / JOIN-ON predicates:
///
/// 1. `conv(attr) <cmp> constant` becomes
///    `attr <cmp> fromUniversal(toUniversal(constant, C), ttid)`. The constant
///    is converted *into the owner's format* once per tenant instead of
///    converting the attribute for every row (Listing 15). Applied only when
///    the comparison is an equality or the pair is order-preserving.
/// 2. `conv(a) <cmp> conv(b)` compares in universal format:
///    `toUniversal(a, ttid_a) <cmp> toUniversal(b, ttid_b)` — saving the two
///    `fromUniversal` calls (Listing 14 / client presentation push-up).
pub fn pushup_query(query: &Query, catalog: &Catalog) -> Query {
    let body = &query.body;
    Query {
        body: Select {
            distinct: body.distinct,
            projection: body
                .projection
                .iter()
                .map(|item| match item {
                    SelectItem::Expr { expr, alias } => SelectItem::Expr {
                        expr: pushup_subqueries_only(expr, catalog),
                        alias: alias.clone(),
                    },
                    other => other.clone(),
                })
                .collect(),
            from: body
                .from
                .iter()
                .map(|t| pushup_table_ref(t, catalog))
                .collect(),
            selection: body
                .selection
                .as_ref()
                .map(|s| pushup_predicate(s, catalog)),
            group_by: body.group_by.clone(),
            having: body.having.as_ref().map(|h| pushup_predicate(h, catalog)),
        },
        order_by: query.order_by.clone(),
        limit: query.limit,
    }
}

fn pushup_table_ref(table_ref: &TableRef, catalog: &Catalog) -> TableRef {
    match table_ref {
        TableRef::Table { .. } => table_ref.clone(),
        TableRef::Derived { query, alias } => TableRef::Derived {
            query: Box::new(pushup_query(query, catalog)),
            alias: alias.clone(),
        },
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => TableRef::Join {
            left: Box::new(pushup_table_ref(left, catalog)),
            right: Box::new(pushup_table_ref(right, catalog)),
            kind: *kind,
            on: on.as_ref().map(|c| pushup_predicate(c, catalog)),
        },
    }
}

/// Push conversions in a predicate tree.
fn pushup_predicate(expr: &Expr, catalog: &Catalog) -> Expr {
    match expr {
        Expr::BinaryOp { left, op, right } if op.is_comparison() => {
            let lconv = match_conversion_call(left, catalog);
            let rconv = match_conversion_call(right, catalog);
            match (&lconv, &rconv) {
                // conv(a) cmp conv(b): compare in universal format.
                (Some(lc), Some(rc))
                    if pushup_applicable(lc, *op, catalog)
                        && pushup_applicable(rc, *op, catalog) =>
                {
                    return Expr::BinaryOp {
                        left: Box::new(lc.to_universal_expr()),
                        op: *op,
                        right: Box::new(rc.to_universal_expr()),
                    };
                }
                // conv(attr) cmp constant: convert the constant instead.
                (Some(lc), None)
                    if is_constant_expr(right) && pushup_applicable(lc, *op, catalog) =>
                {
                    return Expr::BinaryOp {
                        left: Box::new(lc.attr.clone()),
                        op: *op,
                        right: Box::new(constant_to_owner_format(lc, right)),
                    };
                }
                (None, Some(rc))
                    if is_constant_expr(left) && pushup_applicable(rc, *op, catalog) =>
                {
                    return Expr::BinaryOp {
                        left: Box::new(constant_to_owner_format(rc, left)),
                        op: *op,
                        right: Box::new(rc.attr.clone()),
                    };
                }
                _ => {}
            }
            Expr::BinaryOp {
                left: Box::new(pushup_predicate(left, catalog)),
                op: *op,
                right: Box::new(pushup_predicate(right, catalog)),
            }
        }
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: Box::new(pushup_predicate(left, catalog)),
            op: *op,
            right: Box::new(pushup_predicate(right, catalog)),
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: Box::new(pushup_predicate(expr, catalog)),
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            // BETWEEN over a converted attribute with constant bounds behaves
            // like two comparisons: convert the bounds instead.
            if let Some(conv) = match_conversion_call(expr, catalog) {
                if conversion_class(&conv, catalog).is_some_and(|c| c.is_order_preserving())
                    && is_constant_expr(low)
                    && is_constant_expr(high)
                {
                    return Expr::Between {
                        expr: Box::new(conv.attr.clone()),
                        low: Box::new(constant_to_owner_format(&conv, low)),
                        high: Box::new(constant_to_owner_format(&conv, high)),
                        negated: *negated,
                    };
                }
            }
            expr_map_subqueries(
                &Expr::Between {
                    expr: expr.clone(),
                    low: low.clone(),
                    high: high.clone(),
                    negated: *negated,
                },
                catalog,
            )
        }
        other => expr_map_subqueries(other, catalog),
    }
}

/// Is the push-up legal for this comparison operator and conversion class?
fn pushup_applicable(conv: &ConversionCall, op: BinaryOperator, catalog: &Catalog) -> bool {
    let Some(class) = conversion_class(conv, catalog) else {
        return false;
    };
    match op {
        BinaryOperator::Eq | BinaryOperator::NotEq => true,
        _ => class.is_order_preserving(),
    }
}

fn conversion_class(conv: &ConversionCall, catalog: &Catalog) -> Option<ConversionClass> {
    catalog
        .conversion_by_name(&conv.to_universal)
        .map(|p| p.class)
}

/// Convert a client-format constant into the data owner's format:
/// `fromUniversal(toUniversal(const, C), ttid)`.
fn constant_to_owner_format(conv: &ConversionCall, constant: &Expr) -> Expr {
    Expr::call(
        &conv.from_universal,
        vec![
            Expr::call(
                &conv.to_universal,
                vec![constant.clone(), conv.client.clone()],
            ),
            conv.ttid.clone(),
        ],
    )
}

/// Recurse into sub-queries inside arbitrary expressions without rewriting the
/// expression itself.
fn pushup_subqueries_only(expr: &Expr, catalog: &Catalog) -> Expr {
    expr_map_subqueries(expr, catalog)
}

fn expr_map_subqueries(expr: &Expr, catalog: &Catalog) -> Expr {
    match expr {
        Expr::Exists { query, negated } => Expr::Exists {
            query: Box::new(pushup_query(query, catalog)),
            negated: *negated,
        },
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(expr_map_subqueries(expr, catalog)),
            query: Box::new(pushup_query(query, catalog)),
            negated: *negated,
        },
        Expr::ScalarSubquery(q) => Expr::ScalarSubquery(Box::new(pushup_query(q, catalog))),
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: Box::new(expr_map_subqueries(left, catalog)),
            op: *op,
            right: Box::new(expr_map_subqueries(right, catalog)),
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: Box::new(expr_map_subqueries(expr, catalog)),
        },
        Expr::Function(f) => Expr::Function(FunctionCall {
            name: f.name.clone(),
            args: f
                .args
                .iter()
                .map(|a| expr_map_subqueries(a, catalog))
                .collect(),
            distinct: f.distinct,
        }),
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------------
// Aggregation distribution (o3)
// ---------------------------------------------------------------------------

/// Apply aggregation distribution (Listing 16 of the paper) wherever it is
/// legal: aggregates over converted attributes are computed per tenant in the
/// tenant's own format, the partial results converted once per tenant, and the
/// final result converted once — reducing conversion calls from `2·N` to
/// `T + 1`.
///
/// The transformation rewrites the aggregate query into a two-level query:
/// an inner query grouping by the original keys *plus* `ttid`, and an outer
/// query re-aggregating the partials. It is applied only when every aggregate
/// distributes over the conversion class involved (Table 2); otherwise the
/// query is returned unchanged (skipping an optimization is always sound).
pub fn distribute_query(query: &Query, catalog: &Catalog) -> Query {
    // First recurse into derived tables and sub-queries.
    let recursed = map_query_blocks(query, catalog);
    match try_distribute(&recursed, catalog) {
        Some(q) => q,
        None => recursed,
    }
}

fn map_query_blocks(query: &Query, catalog: &Catalog) -> Query {
    let body = &query.body;
    Query {
        body: Select {
            distinct: body.distinct,
            projection: body
                .projection
                .iter()
                .map(|item| match item {
                    SelectItem::Expr { expr, alias } => SelectItem::Expr {
                        expr: distribute_in_expr(expr, catalog),
                        alias: alias.clone(),
                    },
                    other => other.clone(),
                })
                .collect(),
            from: body
                .from
                .iter()
                .map(|t| distribute_table_ref(t, catalog))
                .collect(),
            selection: body
                .selection
                .as_ref()
                .map(|s| distribute_in_expr(s, catalog)),
            group_by: body.group_by.clone(),
            having: body.having.as_ref().map(|h| distribute_in_expr(h, catalog)),
        },
        order_by: query.order_by.clone(),
        limit: query.limit,
    }
}

fn distribute_table_ref(table_ref: &TableRef, catalog: &Catalog) -> TableRef {
    match table_ref {
        TableRef::Derived { query, alias } => TableRef::Derived {
            query: Box::new(distribute_query(query, catalog)),
            alias: alias.clone(),
        },
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => TableRef::Join {
            left: Box::new(distribute_table_ref(left, catalog)),
            right: Box::new(distribute_table_ref(right, catalog)),
            kind: *kind,
            on: on.as_ref().map(|c| distribute_in_expr(c, catalog)),
        },
        other => other.clone(),
    }
}

/// Recurse into sub-queries embedded in expressions so that both sides of a
/// comparison (e.g. Q15's `total_revenue = (SELECT MAX(total_revenue) ...)`)
/// receive the same treatment.
fn distribute_in_expr(expr: &Expr, catalog: &Catalog) -> Expr {
    match expr {
        Expr::Exists { query, negated } => Expr::Exists {
            query: Box::new(distribute_query(query, catalog)),
            negated: *negated,
        },
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(distribute_in_expr(expr, catalog)),
            query: Box::new(distribute_query(query, catalog)),
            negated: *negated,
        },
        Expr::ScalarSubquery(q) => Expr::ScalarSubquery(Box::new(distribute_query(q, catalog))),
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: Box::new(distribute_in_expr(left, catalog)),
            op: *op,
            right: Box::new(distribute_in_expr(right, catalog)),
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: Box::new(distribute_in_expr(expr, catalog)),
        },
        Expr::Function(f) => Expr::Function(FunctionCall {
            name: f.name.clone(),
            args: f
                .args
                .iter()
                .map(|a| distribute_in_expr(a, catalog))
                .collect(),
            distinct: f.distinct,
        }),
        other => other.clone(),
    }
}

/// One aggregate of the original query and its distribution plan.
struct AggPlan {
    original: FunctionCall,
    kind: AggregateKind,
    /// `Some` when the (normalized) argument is a conversion call.
    conversion: Option<ConversionCall>,
    /// Argument of the aggregate with the conversion peeled off (or the plain
    /// argument for unconverted aggregates). Empty for `COUNT(*)`.
    arg: Option<Expr>,
}

fn try_distribute(query: &Query, catalog: &Catalog) -> Option<Query> {
    let select = &query.body;
    if select.distinct {
        return None;
    }
    // Group-by keys must not themselves be converted values.
    if select
        .group_by
        .iter()
        .any(|g| match_conversion_call(g, catalog).is_some())
    {
        return None;
    }

    let mut aggregates: Vec<FunctionCall> = Vec::new();
    for item in &select.projection {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggregate_calls(expr, &mut aggregates);
        }
    }
    if let Some(h) = &select.having {
        collect_aggregate_calls(h, &mut aggregates);
    }
    for o in &query.order_by {
        collect_aggregate_calls(&o.expr, &mut aggregates);
    }
    if aggregates.is_empty() {
        return None;
    }

    // Build per-aggregate plans.
    let mut plans = Vec::with_capacity(aggregates.len());
    let mut ttid_expr: Option<Expr> = None;
    let mut any_converted = false;
    for agg in &aggregates {
        if agg.distinct {
            return None;
        }
        let kind = AggregateKind::from_name(&agg.name)?;
        if agg.args.is_empty() {
            plans.push(AggPlan {
                original: agg.clone(),
                kind,
                conversion: None,
                arg: None,
            });
            continue;
        }
        let normalized = hoist_constant_factor(&agg.args[0], catalog);
        match match_conversion_call(&normalized, catalog) {
            Some(conv) => {
                let class = conversion_class(&conv, catalog)?;
                if !class.distributes(kind) {
                    return None;
                }
                match &ttid_expr {
                    None => ttid_expr = Some(conv.ttid.clone()),
                    Some(existing) if *existing == conv.ttid => {}
                    Some(_) => return None,
                }
                any_converted = true;
                plans.push(AggPlan {
                    original: agg.clone(),
                    kind,
                    arg: Some(conv.attr.clone()),
                    conversion: Some(conv),
                });
            }
            None => {
                // Aggregates over untouched expressions distribute trivially,
                // but bail out if a conversion call is buried somewhere we
                // cannot peel it from.
                if expr_contains_conversion(&normalized, catalog) {
                    return None;
                }
                plans.push(AggPlan {
                    original: agg.clone(),
                    kind,
                    conversion: None,
                    arg: Some(normalized),
                });
            }
        }
    }
    if !any_converted {
        return None;
    }
    let ttid_expr = ttid_expr?;

    // ------------------------------------------------------------------
    // Inner query: per (group keys, ttid) partial aggregates.
    // ------------------------------------------------------------------
    let mut inner_projection: Vec<SelectItem> = Vec::new();
    let mut group_aliases: Vec<String> = Vec::new();
    for (i, g) in select.group_by.iter().enumerate() {
        let alias = format!("mt_g{i}");
        inner_projection.push(SelectItem::aliased(g.clone(), alias.clone()));
        group_aliases.push(alias);
    }
    inner_projection.push(SelectItem::aliased(ttid_expr.clone(), "mt_ttid"));

    // For each plan emit the partial columns and remember how to combine them.
    let mut combine_exprs: Vec<Expr> = Vec::new();
    for (j, plan) in plans.iter().enumerate() {
        let partial = format!("mt_p{j}");
        match (&plan.conversion, plan.kind) {
            (None, AggregateKind::Count) => {
                inner_projection.push(SelectItem::aliased(
                    Expr::Function(plan.original.clone()),
                    partial.clone(),
                ));
                combine_exprs.push(Expr::call("SUM", vec![Expr::col(&partial)]));
            }
            (None, AggregateKind::Sum) => {
                inner_projection.push(SelectItem::aliased(
                    Expr::Function(plan.original.clone()),
                    partial.clone(),
                ));
                combine_exprs.push(Expr::call("SUM", vec![Expr::col(&partial)]));
            }
            (None, AggregateKind::Min) | (None, AggregateKind::Max) => {
                let f = if plan.kind == AggregateKind::Min {
                    "MIN"
                } else {
                    "MAX"
                };
                inner_projection.push(SelectItem::aliased(
                    Expr::Function(plan.original.clone()),
                    partial.clone(),
                ));
                combine_exprs.push(Expr::call(f, vec![Expr::col(&partial)]));
            }
            (None, AggregateKind::Avg) => {
                let sum_alias = format!("{partial}_sum");
                let cnt_alias = format!("{partial}_cnt");
                let arg = plan.arg.clone().expect("AVG has an argument");
                inner_projection.push(SelectItem::aliased(
                    Expr::call("SUM", vec![arg.clone()]),
                    sum_alias.clone(),
                ));
                inner_projection.push(SelectItem::aliased(
                    Expr::call("COUNT", vec![arg]),
                    cnt_alias.clone(),
                ));
                combine_exprs.push(Expr::binary(
                    Expr::call("SUM", vec![Expr::col(&sum_alias)]),
                    BinaryOperator::Divide,
                    Expr::call("SUM", vec![Expr::col(&cnt_alias)]),
                ));
            }
            (None, AggregateKind::Holistic) => return None,
            (Some(conv), kind) => {
                let arg = plan
                    .arg
                    .clone()
                    .expect("converted aggregates have an argument");
                match kind {
                    AggregateKind::Count => {
                        inner_projection.push(SelectItem::aliased(
                            Expr::call("COUNT", vec![arg]),
                            partial.clone(),
                        ));
                        combine_exprs.push(Expr::call("SUM", vec![Expr::col(&partial)]));
                    }
                    AggregateKind::Min | AggregateKind::Max => {
                        let f = if kind == AggregateKind::Min {
                            "MIN"
                        } else {
                            "MAX"
                        };
                        // toUniversal(MIN(arg), ttid): one conversion per
                        // (group, tenant).
                        inner_projection.push(SelectItem::aliased(
                            Expr::call(
                                &conv.to_universal,
                                vec![Expr::call(f, vec![arg]), ttid_expr.clone()],
                            ),
                            partial.clone(),
                        ));
                        combine_exprs.push(Expr::call(
                            &conv.from_universal,
                            vec![
                                Expr::call(f, vec![Expr::col(&partial)]),
                                conv.client.clone(),
                            ],
                        ));
                    }
                    AggregateKind::Sum | AggregateKind::Avg => {
                        // Per-tenant average converted to universal plus the
                        // count: correct for every linear conversion pair
                        // (Appendix B of the paper).
                        let avg_alias = format!("{partial}_avg");
                        let cnt_alias = format!("{partial}_cnt");
                        inner_projection.push(SelectItem::aliased(
                            Expr::call(
                                &conv.to_universal,
                                vec![Expr::call("AVG", vec![arg.clone()]), ttid_expr.clone()],
                            ),
                            avg_alias.clone(),
                        ));
                        inner_projection.push(SelectItem::aliased(
                            Expr::call("COUNT", vec![arg]),
                            cnt_alias.clone(),
                        ));
                        let weighted_sum = Expr::call(
                            "SUM",
                            vec![Expr::binary(
                                Expr::col(&avg_alias),
                                BinaryOperator::Multiply,
                                Expr::col(&cnt_alias),
                            )],
                        );
                        let universal = if kind == AggregateKind::Sum {
                            weighted_sum
                        } else {
                            Expr::binary(
                                weighted_sum,
                                BinaryOperator::Divide,
                                Expr::call("SUM", vec![Expr::col(&cnt_alias)]),
                            )
                        };
                        combine_exprs.push(Expr::call(
                            &conv.from_universal,
                            vec![universal, conv.client.clone()],
                        ));
                    }
                    AggregateKind::Holistic => return None,
                }
            }
        }
    }

    let mut inner_group_by = select.group_by.clone();
    inner_group_by.push(ttid_expr);
    let inner = Query::from_select(Select {
        distinct: false,
        projection: inner_projection,
        from: select.from.clone(),
        selection: select.selection.clone(),
        group_by: inner_group_by,
        having: None,
    });

    // ------------------------------------------------------------------
    // Outer query: re-aggregate the partials.
    // ------------------------------------------------------------------
    let substitute = |expr: &Expr| -> Expr {
        substitute_for_outer(
            expr,
            &select.group_by,
            &group_aliases,
            &plans,
            &combine_exprs,
        )
    };

    let outer_projection: Vec<SelectItem> = select
        .projection
        .iter()
        .map(|item| match item {
            SelectItem::Expr { expr, alias } => {
                let new_alias = alias.clone().or_else(|| match expr {
                    Expr::Column(c) => Some(c.name.clone()),
                    _ => None,
                });
                SelectItem::Expr {
                    expr: substitute(expr),
                    alias: new_alias,
                }
            }
            other => other.clone(),
        })
        .collect();
    let outer_group_by: Vec<Expr> = group_aliases.iter().map(Expr::col).collect();
    let outer_having = select.having.as_ref().map(&substitute);
    let outer_order_by: Vec<OrderByItem> = query
        .order_by
        .iter()
        .map(|o| OrderByItem {
            expr: substitute(&o.expr),
            asc: o.asc,
        })
        .collect();

    // Verify the outer query references only inner output columns.
    let inner_outputs: Vec<String> = {
        let mut names: Vec<String> = group_aliases.clone();
        names.push("mt_ttid".to_string());
        for item in &inner.body.projection {
            if let SelectItem::Expr { alias: Some(a), .. } = item {
                if !names.contains(a) {
                    names.push(a.clone());
                }
            }
        }
        names
    };
    let mut outer_cols = Vec::new();
    for item in &outer_projection {
        if let SelectItem::Expr { expr, .. } = item {
            mtsql::visit::collect_columns(expr, &mut outer_cols);
        }
    }
    if let Some(h) = &outer_having {
        mtsql::visit::collect_columns(h, &mut outer_cols);
    }
    for o in &outer_order_by {
        mtsql::visit::collect_columns(&o.expr, &mut outer_cols);
    }
    let ok = outer_cols.iter().all(|c| {
        inner_outputs
            .iter()
            .any(|n| n.eq_ignore_ascii_case(&c.name))
    });
    if !ok {
        return None;
    }

    Some(Query {
        body: Select {
            distinct: false,
            projection: outer_projection,
            from: vec![TableRef::Derived {
                query: Box::new(inner),
                alias: "mt_partials".to_string(),
            }],
            selection: None,
            group_by: outer_group_by,
            having: outer_having,
        },
        order_by: outer_order_by,
        limit: query.limit,
    })
}

/// Replace group-by expressions with their inner aliases and aggregate calls
/// with their combine expressions.
fn substitute_for_outer(
    expr: &Expr,
    group_by: &[Expr],
    group_aliases: &[String],
    plans: &[AggPlan],
    combine_exprs: &[Expr],
) -> Expr {
    for (i, g) in group_by.iter().enumerate() {
        if g == expr {
            return Expr::col(&group_aliases[i]);
        }
    }
    if let Expr::Function(f) = expr {
        if f.is_aggregate() {
            for (j, plan) in plans.iter().enumerate() {
                if plan.original == *f {
                    return combine_exprs[j].clone();
                }
            }
        }
    }
    match expr {
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: Box::new(substitute_for_outer(
                left,
                group_by,
                group_aliases,
                plans,
                combine_exprs,
            )),
            op: *op,
            right: Box::new(substitute_for_outer(
                right,
                group_by,
                group_aliases,
                plans,
                combine_exprs,
            )),
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: Box::new(substitute_for_outer(
                expr,
                group_by,
                group_aliases,
                plans,
                combine_exprs,
            )),
        },
        Expr::Function(f) => Expr::Function(FunctionCall {
            name: f.name.clone(),
            args: f
                .args
                .iter()
                .map(|a| substitute_for_outer(a, group_by, group_aliases, plans, combine_exprs))
                .collect(),
            distinct: f.distinct,
        }),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => Expr::Case {
            operand: operand.as_ref().map(|o| {
                Box::new(substitute_for_outer(
                    o,
                    group_by,
                    group_aliases,
                    plans,
                    combine_exprs,
                ))
            }),
            when_then: when_then
                .iter()
                .map(|(w, t)| {
                    (
                        substitute_for_outer(w, group_by, group_aliases, plans, combine_exprs),
                        substitute_for_outer(t, group_by, group_aliases, plans, combine_exprs),
                    )
                })
                .collect(),
            else_expr: else_expr.as_ref().map(|e| {
                Box::new(substitute_for_outer(
                    e,
                    group_by,
                    group_aliases,
                    plans,
                    combine_exprs,
                ))
            }),
        },
        other => other.clone(),
    }
}

/// Hoist constant-factor conversions out of multiplicative expressions:
/// `conv(x) * rest` becomes `conv(x * rest)` when the pair is a multiplication
/// by a constant (the paper's fully-multiplication-preserving property), so
/// that the whole aggregate argument is wrapped by a single conversion.
pub fn hoist_constant_factor(expr: &Expr, catalog: &Catalog) -> Expr {
    if match_conversion_call(expr, catalog).is_some() {
        return expr.clone();
    }
    match expr {
        Expr::BinaryOp { left, op, right }
            if matches!(op, BinaryOperator::Multiply | BinaryOperator::Divide) =>
        {
            let l = hoist_constant_factor(left, catalog);
            let r = hoist_constant_factor(right, catalog);
            let lconv = match_conversion_call(&l, catalog);
            let rconv = match_conversion_call(&r, catalog);
            let is_constant_factor = |c: &ConversionCall| {
                conversion_class(c, catalog) == Some(ConversionClass::ConstantFactor)
            };
            match (lconv, rconv) {
                (Some(lc), None)
                    if is_constant_factor(&lc) && !expr_contains_conversion(&r, catalog) =>
                {
                    ConversionCall {
                        attr: Expr::BinaryOp {
                            left: Box::new(lc.attr.clone()),
                            op: *op,
                            right: Box::new(r),
                        },
                        ..lc
                    }
                    .to_expr()
                }
                (None, Some(rc))
                    if *op == BinaryOperator::Multiply
                        && is_constant_factor(&rc)
                        && !expr_contains_conversion(&l, catalog) =>
                {
                    ConversionCall {
                        attr: Expr::BinaryOp {
                            left: Box::new(l),
                            op: *op,
                            right: Box::new(rc.attr.clone()),
                        },
                        ..rc
                    }
                    .to_expr()
                }
                _ => Expr::BinaryOp {
                    left: Box::new(l),
                    op: *op,
                    right: Box::new(r),
                },
            }
        }
        other => other.clone(),
    }
}

/// Does the expression contain any conversion-function call?
pub fn expr_contains_conversion(expr: &Expr, catalog: &Catalog) -> bool {
    if match_conversion_call(expr, catalog).is_some() {
        return true;
    }
    if let Expr::Function(f) = expr {
        if catalog.conversion_by_name(&f.name).is_some() {
            return true;
        }
    }
    match expr {
        Expr::BinaryOp { left, right, .. } => {
            expr_contains_conversion(left, catalog) || expr_contains_conversion(right, catalog)
        }
        Expr::UnaryOp { expr, .. } => expr_contains_conversion(expr, catalog),
        Expr::Function(f) => f.args.iter().any(|a| expr_contains_conversion(a, catalog)),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            operand
                .as_deref()
                .is_some_and(|o| expr_contains_conversion(o, catalog))
                || when_then.iter().any(|(w, t)| {
                    expr_contains_conversion(w, catalog) || expr_contains_conversion(t, catalog)
                })
                || else_expr
                    .as_deref()
                    .is_some_and(|e| expr_contains_conversion(e, catalog))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::{rewrite_query, RewriteSettings};
    use mtcatalog::running_example_catalog;

    fn canonical(sql: &str) -> Query {
        let catalog = running_example_catalog();
        rewrite_query(
            &mtsql::parse_query(sql).unwrap(),
            &catalog,
            &RewriteSettings::canonical(0, vec![0, 1]),
        )
        .unwrap()
    }

    #[test]
    fn pushup_converts_constant_instead_of_attribute() {
        let catalog = running_example_catalog();
        let q = canonical("SELECT E_name FROM Employees WHERE E_salary > 100000");
        let out = pushup_query(&q, &catalog).to_string();
        // The attribute is compared raw; the constant gets the conversion.
        assert!(out.contains(
            "E_salary > currencyFromUniversal(currencyToUniversal(100000, 0), Employees.ttid)"
        ));
    }

    #[test]
    fn pushup_compares_two_attributes_in_universal_format() {
        let catalog = running_example_catalog();
        let q = canonical(
            "SELECT E1.E_name FROM Employees E1, Employees E2 WHERE E1.E_salary > E2.E_salary",
        );
        let out = pushup_query(&q, &catalog).to_string();
        assert!(!out.contains("currencyFromUniversal"));
        assert_eq!(out.matches("currencyToUniversal").count(), 2);
    }

    #[test]
    fn pushup_preserves_select_conversions() {
        let catalog = running_example_catalog();
        let q = canonical("SELECT E_salary FROM Employees");
        let out = pushup_query(&q, &catalog).to_string();
        assert!(out.contains("currencyFromUniversal(currencyToUniversal(E_salary"));
    }

    #[test]
    fn hoisting_pulls_constant_factor_conversion_outward() {
        let catalog = running_example_catalog();
        let q = canonical("SELECT SUM(E_salary * (1 - E_age)) AS x FROM Employees");
        // grab the aggregate argument
        let SelectItem::Expr { expr, .. } = &q.body.projection[0] else {
            panic!()
        };
        let Expr::Function(f) = expr else { panic!() };
        let hoisted = hoist_constant_factor(&f.args[0], &catalog);
        let conv = match_conversion_call(&hoisted, &catalog).expect("hoisted to full conversion");
        assert!(matches!(conv.attr, Expr::BinaryOp { .. }));
    }

    #[test]
    fn distribution_produces_two_level_aggregate() {
        let catalog = running_example_catalog();
        let q = canonical("SELECT SUM(E_salary) AS sum_sal FROM Employees");
        let out = distribute_query(&q, &catalog);
        let sql = out.to_string();
        assert!(
            sql.contains("GROUP BY"),
            "inner grouping by ttid expected: {sql}"
        );
        assert!(sql.contains("mt_partials"));
        // outer conversion to client format happens exactly once
        assert_eq!(sql.matches("currencyFromUniversal").count(), 1);
        // inner conversion of the per-tenant partial happens on the AVG
        assert_eq!(sql.matches("currencyToUniversal").count(), 1);
    }

    #[test]
    fn distribution_keeps_group_by_keys() {
        let catalog = running_example_catalog();
        let q = canonical(
            "SELECT E_age, AVG(E_salary) AS avg_sal, COUNT(*) AS cnt FROM Employees \
             GROUP BY E_age ORDER BY E_age",
        );
        let out = distribute_query(&q, &catalog);
        let sql = out.to_string();
        assert!(sql.contains("mt_g0"));
        assert!(sql.contains("GROUP BY mt_g0"));
    }

    #[test]
    fn distribution_is_skipped_for_distinct_aggregates() {
        let catalog = running_example_catalog();
        let q = canonical("SELECT COUNT(DISTINCT E_salary) AS c FROM Employees");
        let out = distribute_query(&q, &catalog);
        assert_eq!(out, q);
    }

    #[test]
    fn distribution_is_skipped_without_converted_aggregates() {
        let catalog = running_example_catalog();
        let q = canonical("SELECT COUNT(*) AS c, AVG(E_age) AS a FROM Employees GROUP BY E_reg_id");
        let out = distribute_query(&q, &catalog);
        assert_eq!(out, q);
    }
}

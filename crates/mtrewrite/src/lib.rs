//! `mtrewrite` — the MTSQL→SQL rewrite middleware core of MTBase.
//!
//! The crate implements the canonical rewrite algorithm of the paper
//! (§3.1) plus the optimization passes of §4, organised as the optimization
//! levels evaluated in the paper (Table 6):
//!
//! | level | passes |
//! |---|---|
//! | `canonical` | none |
//! | `o1` | trivial semantic optimizations |
//! | `o2` | o1 + client-presentation push-up + conversion push-up |
//! | `o3` | o2 + conversion function distribution |
//! | `o4` | o3 + conversion function inlining |
//! | `inl-only` | o1 + conversion function inlining |
//!
//! # Example
//!
//! ```
//! use mtcatalog::running_example_catalog;
//! use mtrewrite::{OptLevel, Rewriter};
//!
//! let catalog = running_example_catalog();
//! let rewriter = Rewriter::new(&catalog);
//! let query = mtsql::parse_query("SELECT AVG(E_salary) AS avg_sal FROM Employees").unwrap();
//! let rewritten = rewriter
//!     .rewrite_query(&query, 0, &[0, 1], OptLevel::Canonical)
//!     .unwrap();
//! assert!(rewritten.to_string().contains("currencyToUniversal"));
//! ```

pub mod canonical;
pub mod context;
pub mod error;
pub mod inline;
pub mod optimize;

use mtcatalog::{Catalog, TenantId};
use mtsql::ast::{Expr, Query, ScopeSpec, TableRef};

pub use crate::canonical::{d_filter, rewrite_complex_scope, RewriteSettings};
pub use crate::error::{Result, RewriteError};
pub use crate::inline::{InlineRegistry, InlineSpec};

/// The optimization levels evaluated in the paper (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// Canonical rewrite without any optimization.
    Canonical,
    /// Trivial semantic optimizations (§4.1).
    O1,
    /// O1 + client presentation push-up + conversion push-up (§4.2.1).
    O2,
    /// O2 + conversion function distribution (§4.2.2).
    O3,
    /// O3 + conversion function inlining (§4.2.3).
    O4,
    /// O1 + conversion function inlining only.
    InlineOnly,
}

impl OptLevel {
    /// All levels, in the order the paper's tables report them.
    pub const ALL: [OptLevel; 6] = [
        OptLevel::Canonical,
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::O4,
        OptLevel::InlineOnly,
    ];

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::Canonical => "canonical",
            OptLevel::O1 => "o1",
            OptLevel::O2 => "o2",
            OptLevel::O3 => "o3",
            OptLevel::O4 => "o4",
            OptLevel::InlineOnly => "inl-only",
        }
    }

    fn trivial(&self) -> bool {
        !matches!(self, OptLevel::Canonical)
    }

    fn pushup(&self) -> bool {
        matches!(self, OptLevel::O2 | OptLevel::O3 | OptLevel::O4)
    }

    fn distribute(&self) -> bool {
        matches!(self, OptLevel::O3 | OptLevel::O4)
    }

    fn inline(&self) -> bool {
        matches!(self, OptLevel::O4 | OptLevel::InlineOnly)
    }
}

impl std::str::FromStr for OptLevel {
    type Err = RewriteError;

    fn from_str(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "canonical" | "none" => Ok(OptLevel::Canonical),
            "o1" => Ok(OptLevel::O1),
            "o2" => Ok(OptLevel::O2),
            "o3" => Ok(OptLevel::O3),
            "o4" => Ok(OptLevel::O4),
            "inl-only" | "inline-only" | "inlonly" => Ok(OptLevel::InlineOnly),
            other => Err(RewriteError::new(format!(
                "unknown optimization level `{other}`"
            ))),
        }
    }
}

/// The MTSQL→SQL rewriter: canonical rewrite plus optimization pipeline.
pub struct Rewriter<'a> {
    catalog: &'a Catalog,
    inline_registry: InlineRegistry,
}

impl<'a> Rewriter<'a> {
    /// Create a rewriter without inlining information (the `o4` and
    /// `inl-only` levels then behave like `o3` and `o1` respectively).
    pub fn new(catalog: &'a Catalog) -> Self {
        Rewriter {
            catalog,
            inline_registry: InlineRegistry::new(),
        }
    }

    /// Create a rewriter with an inline registry for conversion functions.
    pub fn with_inline_registry(catalog: &'a Catalog, inline_registry: InlineRegistry) -> Self {
        Rewriter {
            catalog,
            inline_registry,
        }
    }

    /// The catalog this rewriter consults.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// Rewrite an MTSQL query for client `C` and (pruned) dataset `D'` at the
    /// given optimization level.
    pub fn rewrite_query(
        &self,
        query: &Query,
        client: TenantId,
        dataset: &[TenantId],
        level: OptLevel,
    ) -> Result<Query> {
        let settings = self.settings(client, dataset, level);
        let mut rewritten = canonical::rewrite_query(query, self.catalog, &settings)?;
        if level.pushup() {
            rewritten = optimize::pushup_query(&rewritten, self.catalog);
        }
        if level.distribute() {
            rewritten = optimize::distribute_query(&rewritten, self.catalog);
        }
        if level.inline() {
            rewritten = inline::inline_query(&rewritten, &self.inline_registry);
        }
        Ok(rewritten)
    }

    /// Rewrite the sub-query of a complex scope (Listing 12).
    pub fn rewrite_scope(
        &self,
        from: &[TableRef],
        selection: &Option<Expr>,
        client: TenantId,
    ) -> Result<Query> {
        canonical::rewrite_complex_scope(from, selection, self.catalog, client)
    }

    /// Resolve a scope specification into the dataset `D` (before privilege
    /// pruning). Simple scopes resolve directly; the empty scope means all
    /// registered tenants; complex scopes return `None` — the caller has to
    /// evaluate [`Rewriter::rewrite_scope`] against the database.
    pub fn resolve_simple_scope(&self, scope: &ScopeSpec) -> Option<Vec<TenantId>> {
        match scope {
            ScopeSpec::Simple(ids) => Some(ids.clone()),
            ScopeSpec::AllTenants => Some(self.catalog.tenants().to_vec()),
            ScopeSpec::Complex { .. } => None,
        }
    }

    /// The rewrite settings implementing the trivial optimizations (§4.1) for
    /// the given level.
    fn settings(&self, client: TenantId, dataset: &[TenantId], level: OptLevel) -> RewriteSettings {
        let mut settings = RewriteSettings::canonical(client, dataset.to_vec());
        if level.trivial() {
            let all_tenants = {
                let mut d = dataset.to_vec();
                d.sort_unstable();
                d.dedup();
                d == self.catalog.tenants()
            };
            // D covers every tenant: the D-filters filter nothing.
            if all_tenants && !self.catalog.tenants().is_empty() {
                settings.add_d_filters = false;
            }
            // |D| = 1: all data stems from one tenant, ttid join predicates
            // are redundant.
            if dataset.len() <= 1 {
                settings.add_ttid_join_predicates = false;
            }
            // D = {C}: every value is already in the client's format.
            if dataset == [client] {
                settings.add_conversions = false;
            }
        }
        settings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtcatalog::running_example_catalog;

    fn rewrite(sql: &str, client: TenantId, dataset: &[TenantId], level: OptLevel) -> String {
        let catalog = running_example_catalog();
        let rewriter = Rewriter::with_inline_registry(&catalog, InlineRegistry::mt_h());
        rewriter
            .rewrite_query(&mtsql::parse_query(sql).unwrap(), client, dataset, level)
            .unwrap()
            .to_string()
    }

    #[test]
    fn opt_level_labels_and_parsing() {
        for level in OptLevel::ALL {
            assert_eq!(level.label().parse::<OptLevel>().unwrap(), level);
        }
        assert!("bogus".parse::<OptLevel>().is_err());
    }

    #[test]
    fn o1_drops_conversions_when_querying_own_data() {
        let sql = "SELECT E_salary FROM Employees";
        let canonical = rewrite(sql, 0, &[0], OptLevel::Canonical);
        let o1 = rewrite(sql, 0, &[0], OptLevel::O1);
        assert!(canonical.contains("currencyToUniversal"));
        assert!(!o1.contains("currencyToUniversal"));
        // The D-filter remains (Table 3: "only the D-filters remain").
        assert!(o1.contains("Employees.ttid IN (0)"));
    }

    #[test]
    fn o1_drops_ttid_join_predicate_for_single_foreign_tenant() {
        let sql = "SELECT E_name, R_name FROM Employees, Roles WHERE E_role_id = R_role_id";
        let canonical = rewrite(sql, 0, &[1], OptLevel::Canonical);
        let o1 = rewrite(sql, 0, &[1], OptLevel::O1);
        assert!(canonical.contains("Employees.ttid = Roles.ttid"));
        assert!(!o1.contains("Employees.ttid = Roles.ttid"));
        assert!(o1.contains("ttid IN (1)"));
    }

    #[test]
    fn o1_drops_d_filter_when_querying_all_tenants() {
        let sql = "SELECT E_age FROM Employees";
        let o1 = rewrite(sql, 0, &[0, 1], OptLevel::O1);
        assert!(!o1.contains("ttid IN"));
    }

    #[test]
    fn o2_converts_constants_instead_of_attributes() {
        let sql = "SELECT E_name FROM Employees WHERE E_salary > 100000";
        let o2 = rewrite(sql, 0, &[0, 1], OptLevel::O2);
        assert!(o2.contains("E_salary > currencyFromUniversal(currencyToUniversal(100000, 0)"));
    }

    #[test]
    fn o3_distributes_aggregates() {
        let sql = "SELECT SUM(E_salary) AS s FROM Employees";
        let o3 = rewrite(sql, 0, &[0, 1], OptLevel::O3);
        assert!(o3.contains("mt_partials"));
        assert!(o3.contains("GROUP BY Employees.ttid"));
    }

    #[test]
    fn o4_and_inl_only_remove_all_udf_calls() {
        let sql = "SELECT SUM(E_salary) AS s FROM Employees WHERE E_salary > 100000";
        for level in [OptLevel::O4, OptLevel::InlineOnly] {
            let out = rewrite(sql, 0, &[0, 1], level);
            assert!(
                !out.to_lowercase().contains("currencytouniversal("),
                "{level:?} still contains UDF calls: {out}"
            );
            assert!(out.contains("T_currency_to"));
        }
    }

    #[test]
    fn default_scope_is_client_only() {
        let catalog = running_example_catalog();
        let rewriter = Rewriter::new(&catalog);
        assert_eq!(
            rewriter.resolve_simple_scope(&ScopeSpec::Simple(vec![1, 3])),
            Some(vec![1, 3])
        );
        assert_eq!(
            rewriter.resolve_simple_scope(&ScopeSpec::AllTenants),
            Some(vec![0, 1])
        );
        assert_eq!(
            rewriter.resolve_simple_scope(&ScopeSpec::Complex {
                from: vec![],
                selection: None
            }),
            None
        );
    }
}

//! The canonical MTSQL→SQL rewrite algorithm (§3.1 of the paper, Algorithms
//! 1 and 2), parameterised by the trivial semantic optimizations of §4.1.
//!
//! The rewrite maintains the paper's invariant: *the result of every
//! (sub-)query is filtered according to D′ and presented in the format
//! required by the client C*. It does so by
//!
//! * wrapping every convertible attribute `a` in
//!   `fromUniversal(toUniversal(a, ttid), C)` in SELECT, WHERE, GROUP BY and
//!   HAVING clauses,
//! * adding `ttid` equality predicates to comparisons that involve
//!   tenant-specific attributes of different tables,
//! * rejecting comparisons that mix tenant-specific with comparable or
//!   convertible attributes, and
//! * adding a D-filter `t.ttid IN (D′)` for every tenant-specific base table.

use mtcatalog::{Catalog, Comparability, TenantId, TTID_COLUMN};
use mtsql::ast::*;
use mtsql::visit::split_conjuncts;

use crate::context::{
    collect_bindings, conversion_call, resolve_column, scan_comparability, ttid_column, Binding,
};
use crate::error::{Result, RewriteError};

/// Knobs of the canonical rewrite. The trivial optimizations of §4.1 are
/// expressed as disabling individual rewrite ingredients; the canonical
/// algorithm enables all of them unconditionally.
#[derive(Debug, Clone)]
pub struct RewriteSettings {
    /// The client tenant `C` whose format results must be presented in.
    pub client: TenantId,
    /// The (privilege-pruned) dataset `D'`.
    pub dataset: Vec<TenantId>,
    /// Add `ttid IN (D')` filters for tenant-specific base tables.
    pub add_d_filters: bool,
    /// Add `a.ttid = b.ttid` predicates to tenant-specific comparisons.
    pub add_ttid_join_predicates: bool,
    /// Wrap convertible attributes in conversion-function calls.
    pub add_conversions: bool,
}

impl RewriteSettings {
    /// The canonical settings: everything enabled.
    pub fn canonical(client: TenantId, dataset: Vec<TenantId>) -> Self {
        RewriteSettings {
            client,
            dataset,
            add_d_filters: true,
            add_ttid_join_predicates: true,
            add_conversions: true,
        }
    }
}

/// Rewrite a full MTSQL query into plain SQL.
pub fn rewrite_query(
    query: &Query,
    catalog: &Catalog,
    settings: &RewriteSettings,
) -> Result<Query> {
    rewrite_query_scoped(query, catalog, settings, &[])
}

/// Rewrite a complex `SET SCOPE` expression into the SQL query that computes
/// the dataset `D` (Listing 12 of the paper): `SELECT ttid FROM ... WHERE ...`
/// with the usual conversion treatment of the predicate.
pub fn rewrite_complex_scope(
    from: &[TableRef],
    selection: &Option<Expr>,
    catalog: &Catalog,
    client: TenantId,
) -> Result<Query> {
    let settings = RewriteSettings {
        client,
        dataset: Vec::new(),
        add_d_filters: false,
        add_ttid_join_predicates: true,
        add_conversions: true,
    };
    let scope_query = Query::from_select(Select {
        distinct: true,
        projection: vec![SelectItem::expr(Expr::col(TTID_COLUMN))],
        from: from.to_vec(),
        selection: selection.clone(),
        group_by: Vec::new(),
        having: None,
    });
    rewrite_query_scoped(&scope_query, catalog, &settings, &[])
}

/// Rewrite one query block; `outer_bindings` are the base-table bindings of
/// enclosing query blocks (for correlated sub-queries).
fn rewrite_query_scoped(
    query: &Query,
    catalog: &Catalog,
    settings: &RewriteSettings,
    outer_bindings: &[Binding],
) -> Result<Query> {
    let select = &query.body;
    let own_bindings = collect_bindings(&select.from, catalog);
    // Columns of this block resolve against its own FROM first, then against
    // the enclosing blocks (correlated references).
    let mut all_bindings: Vec<Binding> = own_bindings.clone();
    all_bindings.extend(outer_bindings.iter().cloned());

    let new_from = select
        .from
        .iter()
        .map(|t| rewrite_table_ref(t, catalog, settings, &all_bindings))
        .collect::<Result<Vec<_>>>()?;

    let new_projection = rewrite_projection(&select.projection, catalog, settings, &all_bindings)?;

    let outer_joined = nullable_join_bindings(&select.from, catalog);
    let new_selection = rewrite_selection(
        select.selection.as_ref(),
        catalog,
        settings,
        &all_bindings,
        &own_bindings,
        &outer_joined,
    )?;

    let mut new_group_by = select
        .group_by
        .iter()
        .map(|e| rewrite_expr(e, catalog, settings, &all_bindings))
        .collect::<Result<Vec<_>>>()?;
    // Grouping by a tenant-specific attribute must group per tenant as well:
    // values of different tenants are not comparable (§2.4.2), so e.g.
    // customer 1 of tenant A and customer 1 of tenant B are different groups.
    if settings.add_ttid_join_predicates {
        let mut ttid_bindings: Vec<String> = Vec::new();
        for g in &select.group_by {
            for b in scan_comparability(g, &all_bindings).tenant_specific_bindings {
                if !ttid_bindings.iter().any(|x| x.eq_ignore_ascii_case(&b)) {
                    ttid_bindings.push(b);
                }
            }
        }
        for b in ttid_bindings {
            let ttid = ttid_column(&b);
            if !new_group_by.contains(&ttid) {
                new_group_by.push(ttid);
            }
        }
    }
    let new_having = select
        .having
        .as_ref()
        .map(|h| rewrite_expr(h, catalog, settings, &all_bindings))
        .transpose()?;

    Ok(Query {
        body: Select {
            distinct: select.distinct,
            projection: new_projection,
            from: new_from,
            selection: new_selection,
            group_by: new_group_by,
            having: new_having,
        },
        // ORDER BY refers to output columns which are already in client
        // format, so it needs no rewriting (§3.1).
        order_by: query.order_by.clone(),
        limit: query.limit,
    })
}

fn rewrite_table_ref(
    table_ref: &TableRef,
    catalog: &Catalog,
    settings: &RewriteSettings,
    bindings: &[Binding],
) -> Result<TableRef> {
    match table_ref {
        TableRef::Table { .. } => Ok(table_ref.clone()),
        TableRef::Derived { query, alias } => Ok(TableRef::Derived {
            query: Box::new(rewrite_query_scoped(query, catalog, settings, bindings)?),
            alias: alias.clone(),
        }),
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            let new_left = rewrite_table_ref(left, catalog, settings, bindings)?;
            let new_right = rewrite_table_ref(right, catalog, settings, bindings)?;
            let new_on = match on {
                None => None,
                Some(cond) => {
                    let mut conjuncts = Vec::new();
                    split_conjuncts(cond, &mut conjuncts);
                    let mut rewritten = Vec::new();
                    for c in &conjuncts {
                        check_predicate(c, bindings)?;
                        rewritten.push(rewrite_expr(c, catalog, settings, bindings)?);
                    }
                    if settings.add_ttid_join_predicates {
                        rewritten.extend(ttid_join_predicates(&conjuncts, bindings));
                    }
                    // D-filters for the nullable side of an outer join must be
                    // part of the join condition: putting them into WHERE
                    // would silently turn the outer join into an inner join.
                    if *kind == JoinKind::Left && settings.add_d_filters {
                        for b in collect_bindings(std::slice::from_ref(right), catalog) {
                            if b.table.is_tenant_specific() {
                                rewritten.push(d_filter(&b.name, &settings.dataset));
                            }
                        }
                    }
                    Expr::conjunction(rewritten)
                }
            };
            Ok(TableRef::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind: *kind,
                on: new_on,
            })
        }
    }
}

fn rewrite_projection(
    projection: &[SelectItem],
    catalog: &Catalog,
    settings: &RewriteSettings,
    bindings: &[Binding],
) -> Result<Vec<SelectItem>> {
    let mut out = Vec::new();
    for item in projection {
        match item {
            // `SELECT *` must not expose the invisible ttid column; expand it
            // into the client-visible columns, converted to client format.
            SelectItem::Wildcard => {
                if bindings.is_empty() {
                    out.push(SelectItem::Wildcard);
                } else {
                    for b in bindings {
                        expand_binding_columns(b, catalog, settings, &mut out)?;
                    }
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                match bindings.iter().find(|b| b.name.eq_ignore_ascii_case(q)) {
                    Some(b) => expand_binding_columns(b, catalog, settings, &mut out)?,
                    None => out.push(item.clone()),
                }
            }
            SelectItem::Expr { expr, alias } => {
                let rewritten = rewrite_expr(expr, catalog, settings, bindings)?;
                // Preserve the output column name when the conversion wrapped
                // a bare column reference (Listing 10 of the paper).
                let alias = match (alias, expr, &rewritten) {
                    (Some(a), _, _) => Some(a.clone()),
                    (None, Expr::Column(c), r) if *r != *expr => Some(c.name.clone()),
                    (None, _, _) => None,
                };
                out.push(SelectItem::Expr {
                    expr: rewritten,
                    alias,
                });
            }
        }
    }
    Ok(out)
}

fn expand_binding_columns(
    binding: &Binding,
    catalog: &Catalog,
    settings: &RewriteSettings,
    out: &mut Vec<SelectItem>,
) -> Result<()> {
    for col in &binding.table.columns {
        if col.name.eq_ignore_ascii_case(TTID_COLUMN) {
            continue;
        }
        let expr = Expr::qcol(&binding.name, &col.name);
        let rewritten = rewrite_expr(&expr, catalog, settings, std::slice::from_ref(binding))?;
        out.push(SelectItem::Expr {
            expr: rewritten,
            alias: Some(col.name.clone()),
        });
    }
    Ok(())
}

fn rewrite_selection(
    selection: Option<&Expr>,
    catalog: &Catalog,
    settings: &RewriteSettings,
    all_bindings: &[Binding],
    own_bindings: &[Binding],
    outer_joined_bindings: &[String],
) -> Result<Option<Expr>> {
    let mut conjuncts = Vec::new();
    if let Some(sel) = selection {
        split_conjuncts(sel, &mut conjuncts);
    }

    let mut rewritten = Vec::new();
    for c in &conjuncts {
        check_predicate(c, all_bindings)?;
        rewritten.push(rewrite_expr(c, catalog, settings, all_bindings)?);
    }

    // Additional ttid predicates for tenant-specific comparisons (§2.4.2).
    if settings.add_ttid_join_predicates {
        rewritten.extend(ttid_join_predicates(&conjuncts, all_bindings));
    }

    // D-filters for every tenant-specific base table of *this* block (§3.1).
    // Tables on the nullable side of a LEFT OUTER JOIN are excluded here:
    // their D-filter lives in the join condition instead (see
    // `rewrite_table_ref`), otherwise the filter on a NULL ttid would discard
    // the outer join's unmatched rows.
    if settings.add_d_filters {
        for b in own_bindings {
            if b.table.is_tenant_specific()
                && !outer_joined_bindings
                    .iter()
                    .any(|n| n.eq_ignore_ascii_case(&b.name))
            {
                rewritten.push(d_filter(&b.name, &settings.dataset));
            }
        }
    }

    Ok(Expr::conjunction(rewritten))
}

/// Names of base-table bindings that sit on the nullable (right) side of a
/// LEFT OUTER JOIN anywhere in the FROM clause.
fn nullable_join_bindings(from: &[TableRef], catalog: &Catalog) -> Vec<String> {
    fn walk(item: &TableRef, catalog: &Catalog, out: &mut Vec<String>) {
        if let TableRef::Join {
            left, right, kind, ..
        } = item
        {
            walk(left, catalog, out);
            walk(right, catalog, out);
            if *kind == JoinKind::Left {
                for b in collect_bindings(std::slice::from_ref(&**right), catalog) {
                    out.push(b.name);
                }
            }
        }
    }
    let mut out = Vec::new();
    for item in from {
        walk(item, catalog, &mut out);
    }
    out
}

/// The D-filter `binding.ttid IN (D')`.
pub fn d_filter(binding: &str, dataset: &[TenantId]) -> Expr {
    Expr::InList {
        expr: Box::new(ttid_column(binding)),
        list: dataset.iter().map(|t| Expr::int(*t)).collect(),
        negated: false,
    }
}

/// Reject predicates that compare tenant-specific with comparable/convertible
/// attributes (§2.4.2: "MTSQL does not allow to compare tenant-specific with
/// other attributes").
fn check_predicate(conjunct: &Expr, bindings: &[Binding]) -> Result<()> {
    if let Expr::BinaryOp { left, op, right } = conjunct {
        if op.is_comparison() {
            let left_scan = scan_comparability(left, bindings);
            let right_scan = scan_comparability(right, bindings);
            // Equivalent to the four pairwise products: any tenant-specific
            // side combined with any comparable/convertible side mixes.
            let mixes = (left_scan.has_tenant_specific || right_scan.has_tenant_specific)
                && (left_scan.has_comparable_or_convertible
                    || right_scan.has_comparable_or_convertible);
            if mixes {
                return Err(RewriteError::new(format!(
                    "predicate `{conjunct}` compares tenant-specific with comparable or convertible attributes"
                )));
            }
        }
    }
    Ok(())
}

/// For every conjunct whose tenant-specific attributes span several bindings,
/// produce the extra `a.ttid = b.ttid` predicates.
fn ttid_join_predicates(conjuncts: &[Expr], bindings: &[Binding]) -> Vec<Expr> {
    let mut out: Vec<Expr> = Vec::new();
    for c in conjuncts {
        let scan = scan_comparability(c, bindings);
        if scan.has_tenant_specific && scan.tenant_specific_bindings.len() >= 2 {
            let anchor = &scan.tenant_specific_bindings[0];
            for other in &scan.tenant_specific_bindings[1..] {
                let pred = Expr::eq(ttid_column(anchor), ttid_column(other));
                if !out.contains(&pred) {
                    out.push(pred);
                }
            }
        }
    }
    out
}

/// Rewrite one expression: wrap convertible base-table columns in conversion
/// calls and recursively rewrite nested sub-queries.
fn rewrite_expr(
    expr: &Expr,
    catalog: &Catalog,
    settings: &RewriteSettings,
    bindings: &[Binding],
) -> Result<Expr> {
    let rewritten = match expr {
        Expr::Column(col) => {
            if settings.add_conversions {
                if let Some(resolved) = resolve_column(col, bindings) {
                    if let Comparability::Convertible {
                        to_universal,
                        from_universal,
                    } = &resolved.column.comparability
                    {
                        return Ok(conversion_call(
                            to_universal,
                            from_universal,
                            Expr::Column(col.clone()),
                            ttid_column(&resolved.binding),
                            settings.client,
                        ));
                    }
                }
            }
            expr.clone()
        }
        // Parameters are client-format constants bound at execution time;
        // like literals they pass through the canonical rewrite unchanged
        // (comparisons against convertible attributes convert the attribute
        // side, which is exactly what makes the bound value comparable).
        Expr::Literal(_) | Expr::Param(_) => expr.clone(),
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: Box::new(rewrite_expr(left, catalog, settings, bindings)?),
            op: *op,
            right: Box::new(rewrite_expr(right, catalog, settings, bindings)?),
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: Box::new(rewrite_expr(expr, catalog, settings, bindings)?),
        },
        Expr::Function(f) => Expr::Function(FunctionCall {
            name: f.name.clone(),
            args: f
                .args
                .iter()
                .map(|a| rewrite_expr(a, catalog, settings, bindings))
                .collect::<Result<Vec<_>>>()?,
            distinct: f.distinct,
        }),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| rewrite_expr(o, catalog, settings, bindings).map(Box::new))
                .transpose()?,
            when_then: when_then
                .iter()
                .map(|(w, t)| {
                    Ok((
                        rewrite_expr(w, catalog, settings, bindings)?,
                        rewrite_expr(t, catalog, settings, bindings)?,
                    ))
                })
                .collect::<Result<Vec<_>>>()?,
            else_expr: else_expr
                .as_ref()
                .map(|e| rewrite_expr(e, catalog, settings, bindings).map(Box::new))
                .transpose()?,
        },
        Expr::Exists { query, negated } => Expr::Exists {
            query: Box::new(rewrite_query_scoped(query, catalog, settings, bindings)?),
            negated: *negated,
        },
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(rewrite_expr(expr, catalog, settings, bindings)?),
            query: Box::new(rewrite_query_scoped(query, catalog, settings, bindings)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rewrite_expr(expr, catalog, settings, bindings)?),
            list: list
                .iter()
                .map(|i| rewrite_expr(i, catalog, settings, bindings))
                .collect::<Result<Vec<_>>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rewrite_expr(expr, catalog, settings, bindings)?),
            low: Box::new(rewrite_expr(low, catalog, settings, bindings)?),
            high: Box::new(rewrite_expr(high, catalog, settings, bindings)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rewrite_expr(expr, catalog, settings, bindings)?),
            pattern: Box::new(rewrite_expr(pattern, catalog, settings, bindings)?),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_expr(expr, catalog, settings, bindings)?),
            negated: *negated,
        },
        Expr::ScalarSubquery(q) => Expr::ScalarSubquery(Box::new(rewrite_query_scoped(
            q, catalog, settings, bindings,
        )?)),
        Expr::Extract { field, expr } => Expr::Extract {
            field: *field,
            expr: Box::new(rewrite_expr(expr, catalog, settings, bindings)?),
        },
        Expr::Substring {
            expr,
            start,
            length,
        } => Expr::Substring {
            expr: Box::new(rewrite_expr(expr, catalog, settings, bindings)?),
            start: Box::new(rewrite_expr(start, catalog, settings, bindings)?),
            length: length
                .as_ref()
                .map(|l| rewrite_expr(l, catalog, settings, bindings).map(Box::new))
                .transpose()?,
        },
        Expr::Cast { expr, data_type } => Expr::Cast {
            expr: Box::new(rewrite_expr(expr, catalog, settings, bindings)?),
            data_type: *data_type,
        },
    };
    Ok(rewritten)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtcatalog::running_example_catalog;

    fn rewrite(sql: &str, client: TenantId, dataset: &[TenantId]) -> String {
        let catalog = running_example_catalog();
        let q = mtsql::parse_query(sql).unwrap();
        rewrite_query(
            &q,
            &catalog,
            &RewriteSettings::canonical(client, dataset.to_vec()),
        )
        .unwrap()
        .to_string()
    }

    #[test]
    fn wraps_convertible_attributes_in_select() {
        let out = rewrite("SELECT E_salary FROM Employees", 0, &[0, 1]);
        assert!(out.contains(
            "currencyFromUniversal(currencyToUniversal(E_salary, Employees.ttid), 0) AS E_salary"
        ));
        assert!(out.contains("Employees.ttid IN (0, 1)"));
    }

    #[test]
    fn wraps_convertible_attributes_inside_aggregates() {
        let out = rewrite("SELECT AVG(E_salary) AS avg_sal FROM Employees", 1, &[0, 1]);
        assert!(out.contains(
            "AVG(currencyFromUniversal(currencyToUniversal(E_salary, Employees.ttid), 1))"
        ));
    }

    #[test]
    fn adds_ttid_join_predicate_for_tenant_specific_join() {
        let out = rewrite(
            "SELECT E_name, R_name FROM Employees, Roles WHERE E_role_id = R_role_id",
            0,
            &[0, 1],
        );
        assert!(out.contains("(Employees.ttid = Roles.ttid)"));
        assert!(out.contains("Employees.ttid IN (0, 1)"));
        assert!(out.contains("Roles.ttid IN (0, 1)"));
    }

    #[test]
    fn comparable_self_join_gets_no_ttid_predicate() {
        // Joining employees on age is comparable across tenants (paper intro).
        let out = rewrite(
            "SELECT E1.E_name, E2.E_name FROM Employees E1, Employees E2 WHERE E1.E_age = E2.E_age",
            0,
            &[0, 1],
        );
        assert!(!out.contains("E1.ttid = E2.ttid"));
    }

    #[test]
    fn rejects_mixed_comparisons() {
        let catalog = running_example_catalog();
        let q = mtsql::parse_query("SELECT 1 FROM Employees WHERE E_role_id = E_age").unwrap();
        let err =
            rewrite_query(&q, &catalog, &RewriteSettings::canonical(0, vec![0, 1])).unwrap_err();
        assert!(err.message.contains("tenant-specific"));
    }

    #[test]
    fn star_expansion_hides_ttid() {
        let out = rewrite("SELECT * FROM Roles", 0, &[0]);
        assert!(!out.to_lowercase().contains("roles.ttid,"));
        assert!(out.contains("R_role_id"));
        assert!(out.contains("R_name"));
        // the D-filter still references ttid in the WHERE clause
        assert!(out.contains("Roles.ttid IN (0)"));
    }

    #[test]
    fn global_tables_get_no_d_filter() {
        let out = rewrite("SELECT Re_name FROM Regions", 0, &[0, 1]);
        assert!(!out.contains("IN (0, 1)"));
    }

    #[test]
    fn subqueries_are_rewritten_recursively() {
        let out = rewrite(
            "SELECT E_name FROM Employees WHERE E_salary > (SELECT AVG(E_salary) FROM Employees)",
            0,
            &[0, 1],
        );
        // Both the outer predicate and the inner aggregate are converted, and
        // both levels carry a D-filter.
        assert_eq!(out.matches("Employees.ttid IN (0, 1)").count(), 2);
        assert!(out.matches("currencyToUniversal").count() >= 2);
    }

    #[test]
    fn correlated_subquery_sees_outer_bindings() {
        let out = rewrite(
            "SELECT E1.E_name FROM Employees E1 WHERE EXISTS \
             (SELECT 1 FROM Roles R WHERE R.R_role_id = E1.E_role_id)",
            0,
            &[0, 1],
        );
        // The correlated tenant-specific comparison gets a ttid predicate.
        assert!(out.contains("R.ttid = E1.ttid") || out.contains("E1.ttid = R.ttid"));
    }

    #[test]
    fn disabling_conversions_matches_trivial_optimization() {
        let catalog = running_example_catalog();
        let q = mtsql::parse_query("SELECT E_salary FROM Employees").unwrap();
        let mut settings = RewriteSettings::canonical(0, vec![0]);
        settings.add_conversions = false;
        let out = rewrite_query(&q, &catalog, &settings).unwrap().to_string();
        assert!(!out.contains("currencyToUniversal"));
        assert!(out.contains("Employees.ttid IN (0)"));
    }

    #[test]
    fn complex_scope_is_rewritten_to_ttid_projection() {
        let catalog = running_example_catalog();
        let stmt = mtsql::parse_statement("SET SCOPE = \"FROM Employees WHERE E_salary > 180000\"")
            .unwrap();
        let Statement::SetScope(ScopeSpec::Complex { from, selection }) = stmt else {
            panic!("expected complex scope");
        };
        let q = rewrite_complex_scope(&from, &selection, &catalog, 0).unwrap();
        let sql = q.to_string();
        assert!(sql.starts_with("SELECT DISTINCT ttid FROM Employees"));
        assert!(sql.contains("currencyToUniversal"));
    }

    #[test]
    fn join_on_condition_is_extended_with_ttid() {
        let out = rewrite(
            "SELECT E_name, R_name FROM Employees JOIN Roles ON E_role_id = R_role_id",
            0,
            &[0, 1],
        );
        assert!(out.contains("Employees.ttid = Roles.ttid"));
    }
}

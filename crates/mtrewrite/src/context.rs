//! Shared rewrite context: FROM-clause binding resolution and recognition of
//! conversion-function call patterns in rewritten ASTs.

use mtcatalog::{Catalog, ColumnMeta, Comparability, TableMeta, TenantId, TTID_COLUMN};
use mtsql::ast::*;

/// Binding of a name usable in column qualifiers to a base table.
#[derive(Debug, Clone)]
pub struct Binding<'a> {
    /// The name the query uses (alias if given, table name otherwise).
    pub name: String,
    /// Catalog metadata of the underlying base table.
    pub table: &'a TableMeta,
}

/// Resolution of a column reference against the FROM clause of one query
/// block.
#[derive(Debug, Clone)]
pub struct ResolvedColumn<'a> {
    pub binding: String,
    pub table: &'a TableMeta,
    pub column: &'a ColumnMeta,
}

/// Collect base-table bindings of a FROM clause (derived tables are skipped:
/// their output is already rewritten and therefore needs no further
/// treatment).
pub fn collect_bindings<'a>(from: &[TableRef], catalog: &'a Catalog) -> Vec<Binding<'a>> {
    let mut out = Vec::new();
    for item in from {
        collect_bindings_rec(item, catalog, &mut out);
    }
    out
}

fn collect_bindings_rec<'a>(item: &TableRef, catalog: &'a Catalog, out: &mut Vec<Binding<'a>>) {
    match item {
        TableRef::Table { name, alias } => {
            if let Some(table) = catalog.table(name) {
                out.push(Binding {
                    name: alias.clone().unwrap_or_else(|| name.clone()),
                    table,
                });
            }
        }
        TableRef::Derived { .. } => {}
        TableRef::Join { left, right, .. } => {
            collect_bindings_rec(left, catalog, out);
            collect_bindings_rec(right, catalog, out);
        }
    }
}

/// Resolve a column reference against the bindings of the current query block.
pub fn resolve_column<'a>(
    col: &ColumnRef,
    bindings: &'a [Binding<'a>],
) -> Option<ResolvedColumn<'a>> {
    match &col.table {
        Some(qualifier) => bindings
            .iter()
            .find(|b| b.name.eq_ignore_ascii_case(qualifier))
            .and_then(|b| {
                b.table.column(&col.name).map(|c| ResolvedColumn {
                    binding: b.name.clone(),
                    table: b.table,
                    column: c,
                })
            }),
        None => bindings.iter().find_map(|b| {
            b.table.column(&col.name).map(|c| ResolvedColumn {
                binding: b.name.clone(),
                table: b.table,
                column: c,
            })
        }),
    }
}

/// The ttid column of a binding, as an expression.
pub fn ttid_column(binding: &str) -> Expr {
    Expr::qcol(binding, TTID_COLUMN)
}

/// Build the canonical two-step conversion call
/// `fromUniversal(toUniversal(attr, ttid), C)`.
pub fn conversion_call(
    to_universal: &str,
    from_universal: &str,
    attr: Expr,
    ttid: Expr,
    client: TenantId,
) -> Expr {
    Expr::call(
        from_universal,
        vec![
            Expr::call(to_universal, vec![attr, ttid]),
            Expr::int(client),
        ],
    )
}

/// A recognised canonical conversion call (`from(to(x, ttid), client)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConversionCall {
    pub to_universal: String,
    pub from_universal: String,
    /// The converted expression (usually a column, possibly compound after
    /// hoisting).
    pub attr: Expr,
    /// The owner-ttid expression.
    pub ttid: Expr,
    /// The client expression (normally an integer literal).
    pub client: Expr,
}

impl ConversionCall {
    /// Rebuild the full canonical call.
    pub fn to_expr(&self) -> Expr {
        Expr::call(
            &self.from_universal,
            vec![
                Expr::call(
                    &self.to_universal,
                    vec![self.attr.clone(), self.ttid.clone()],
                ),
                self.client.clone(),
            ],
        )
    }

    /// Build only the inner `toUniversal(attr, ttid)` call.
    pub fn to_universal_expr(&self) -> Expr {
        Expr::call(
            &self.to_universal,
            vec![self.attr.clone(), self.ttid.clone()],
        )
    }
}

/// Recognise a full canonical conversion call against the catalog.
pub fn match_conversion_call(expr: &Expr, catalog: &Catalog) -> Option<ConversionCall> {
    let Expr::Function(outer) = expr else {
        return None;
    };
    let pair = catalog.conversion_by_name(&outer.name)?;
    if !outer.name.eq_ignore_ascii_case(&pair.from_universal) || outer.args.len() != 2 {
        return None;
    }
    let Expr::Function(inner) = &outer.args[0] else {
        return None;
    };
    if !inner.name.eq_ignore_ascii_case(&pair.to_universal) || inner.args.len() != 2 {
        return None;
    }
    Some(ConversionCall {
        to_universal: pair.to_universal.clone(),
        from_universal: pair.from_universal.clone(),
        attr: inner.args[0].clone(),
        ttid: inner.args[1].clone(),
        client: outer.args[1].clone(),
    })
}

/// `true` when the expression contains no column references at all (it is a
/// constant from the client's point of view).
pub fn is_constant_expr(expr: &Expr) -> bool {
    let mut cols = Vec::new();
    mtsql::visit::collect_columns(expr, &mut cols);
    cols.is_empty() && !mtsql::visit::contains_subquery(expr)
}

/// Classify an expression's comparability with respect to the FROM bindings:
/// returns the set of tenant-specific columns, whether any comparable or
/// convertible column occurs, and the distinct bindings of tenant-specific
/// columns.
#[derive(Debug, Default, Clone)]
pub struct ComparabilityScan {
    pub tenant_specific_bindings: Vec<String>,
    pub has_tenant_specific: bool,
    pub has_comparable_or_convertible: bool,
}

/// Scan an expression for the comparability classes of the base-table columns
/// it references.
pub fn scan_comparability(expr: &Expr, bindings: &[Binding]) -> ComparabilityScan {
    let mut cols = Vec::new();
    mtsql::visit::collect_columns(expr, &mut cols);
    let mut scan = ComparabilityScan::default();
    for c in cols {
        if c.name.eq_ignore_ascii_case(TTID_COLUMN) {
            continue;
        }
        if let Some(resolved) = resolve_column(&c, bindings) {
            match resolved.column.comparability {
                Comparability::TenantSpecific => {
                    scan.has_tenant_specific = true;
                    if !scan
                        .tenant_specific_bindings
                        .iter()
                        .any(|b| b.eq_ignore_ascii_case(&resolved.binding))
                    {
                        scan.tenant_specific_bindings.push(resolved.binding.clone());
                    }
                }
                Comparability::Comparable | Comparability::Convertible { .. } => {
                    scan.has_comparable_or_convertible = true;
                }
            }
        }
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtcatalog::running_example_catalog;

    #[test]
    fn bindings_and_resolution() {
        let catalog = running_example_catalog();
        let q = mtsql::parse_query("SELECT 1 FROM Employees E1, Roles, (SELECT 1) AS d").unwrap();
        let bindings = collect_bindings(&q.body.from, &catalog);
        assert_eq!(bindings.len(), 2);
        let r = resolve_column(
            &ColumnRef {
                table: Some("E1".into()),
                name: "E_salary".into(),
            },
            &bindings,
        )
        .unwrap();
        assert_eq!(r.table.name, "Employees");
        let r = resolve_column(
            &ColumnRef {
                table: None,
                name: "R_name".into(),
            },
            &bindings,
        )
        .unwrap();
        assert_eq!(r.binding, "Roles");
    }

    #[test]
    fn conversion_call_roundtrip() {
        let catalog = running_example_catalog();
        let call = conversion_call(
            "currencyToUniversal",
            "currencyFromUniversal",
            Expr::col("E_salary"),
            ttid_column("Employees"),
            7,
        );
        let matched = match_conversion_call(&call, &catalog).unwrap();
        assert_eq!(matched.attr, Expr::col("E_salary"));
        assert_eq!(matched.client, Expr::int(7));
        assert_eq!(matched.to_expr(), call);
    }

    #[test]
    fn non_conversion_calls_are_not_matched() {
        let catalog = running_example_catalog();
        let e = mtsql::parse_expression("SUM(E_salary)").unwrap();
        assert!(match_conversion_call(&e, &catalog).is_none());
    }

    #[test]
    fn constant_detection() {
        assert!(is_constant_expr(
            &mtsql::parse_expression("100000 * 2").unwrap()
        ));
        assert!(!is_constant_expr(
            &mtsql::parse_expression("E_salary * 2").unwrap()
        ));
    }

    #[test]
    fn comparability_scan_flags_mixed_predicates() {
        let catalog = running_example_catalog();
        let q = mtsql::parse_query("SELECT 1 FROM Employees, Roles").unwrap();
        let bindings = collect_bindings(&q.body.from, &catalog);
        let scan = scan_comparability(
            &mtsql::parse_expression("E_role_id = R_role_id").unwrap(),
            &bindings,
        );
        assert!(scan.has_tenant_specific);
        assert!(!scan.has_comparable_or_convertible);
        assert_eq!(scan.tenant_specific_bindings.len(), 2);

        let scan = scan_comparability(
            &mtsql::parse_expression("E_role_id = E_age").unwrap(),
            &bindings,
        );
        assert!(scan.has_tenant_specific && scan.has_comparable_or_convertible);
    }
}

//! Rewrite error type.

use std::fmt;

/// Errors produced while rewriting MTSQL to SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteError {
    pub message: String,
}

impl RewriteError {
    /// Create a new rewrite error.
    pub fn new(message: impl Into<String>) -> Self {
        RewriteError {
            message: message.into(),
        }
    }
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rewrite error: {}", self.message)
    }
}

impl std::error::Error for RewriteError {}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, RewriteError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(
            RewriteError::new("mixing tenant-specific and comparable attributes")
                .to_string()
                .contains("tenant-specific")
        );
    }
}

//! No-op stand-in for `serde_derive`, used because this repository builds in
//! an offline environment. The real serde is not needed at runtime: the
//! workspace only decorates types with `#[derive(Serialize, Deserialize)]`
//! and never serializes them, so the derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro over functions with `arg in strategy` parameters, range strategies
//! for the primitive numeric types, a small regex-like string strategy
//! (character classes and `{m,n}` repetitions), `any::<bool>()`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Cases are
//! generated from a fixed-seed deterministic PRNG; there is no shrinking —
//! a failing case panics with the stringified condition. Swap the path
//! dependency for the real crates.io `proptest` to restore full behaviour.

pub mod test_runner {
    /// Deterministic case generator (SplitMix64).
    pub struct TestRunner {
        state: u64,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl TestRunner {
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        type Value;
        fn sample(&self, runner: &mut TestRunner) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (runner.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, runner: &mut TestRunner) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + runner.next_f64() * (self.end - self.start)
        }
    }

    /// String strategy from a miniature regex dialect: literal characters,
    /// `[...]` character classes with `a-z` ranges, and `{m}` / `{m,n}`
    /// repetitions.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, runner: &mut TestRunner) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (choices, lo, hi) in atoms {
                let n = if lo == hi {
                    lo
                } else {
                    lo + (runner.next_u64() as usize % (hi - lo + 1))
                };
                for _ in 0..n {
                    let idx = runner.next_u64() as usize % choices.len();
                    out.push(choices[idx]);
                }
            }
            out
        }
    }

    /// Parse the pattern into (choices, min-repeat, max-repeat) atoms.
    fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [ in pattern")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        for c in a..=b {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed { in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n}"),
                        n.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let m: usize = body.trim().parse().expect("bad {m}");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push((choices, lo, hi));
        }
        atoms
    }

    /// Strategy produced by [`crate::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }
}

/// The canonical strategy for a type (subset of `proptest::prelude::any`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Number of accepted cases each property runs.
pub const CASES: u32 = 64;
/// Upper bound on generated cases including `prop_assume!` rejections.
pub const MAX_ATTEMPTS: u32 = 4096;

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner = $crate::test_runner::TestRunner::default();
                let mut __accepted = 0u32;
                let mut __attempts = 0u32;
                while __accepted < $crate::CASES {
                    __attempts += 1;
                    assert!(
                        __attempts <= $crate::MAX_ATTEMPTS,
                        "prop_assume! rejected too many generated cases"
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __runner);)*
                    let __result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property `{}` failed: {}", stringify!($name), msg)
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{:?} != {:?}",
                left, right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_regex_strategies_work(
            x in 0_i64..100,
            s in "[a-z]{2,4}",
            flip in any::<bool>(),
        ) {
            prop_assert!((0..100).contains(&x));
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let _ = flip;
        }

        #[test]
        fn assume_rejects_cases(a in 0_i64..10, b in 0_i64..10) {
            prop_assume!(a < b);
            prop_assert!(a < b);
        }
    }
}

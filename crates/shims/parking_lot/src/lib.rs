//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The API subset used by this workspace (`Mutex::lock`, `RwLock::read`,
//! `RwLock::write`, all returning guards directly rather than `Result`s) is
//! reproduced on top of the standard-library primitives; lock poisoning is
//! translated into a panic, matching parking_lot's behaviour of not having
//! poisoning at all for the single-panic case.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (std-backed).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock (std-backed).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(10);
        assert_eq!(*rw.read(), 10);
        *rw.write() = 11;
        assert_eq!(*rw.read(), 11);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! Provides the minimal API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges and `Rng::gen_bool` — backed by a SplitMix64 generator. The
//! sequence differs from the real `rand::StdRng`, which is fine: the MT-H
//! generator only requires determinism for a given seed, not a particular
//! stream.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic PRNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub use rngs::StdRng;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Sampling from a range (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Random-value interface (subset of `rand::Rng`).
pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20i32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=5usize);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!(hits > 700 && hits < 1300, "got {hits}");
    }
}

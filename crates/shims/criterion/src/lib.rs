//! Offline stand-in for `criterion`.
//!
//! Implements the small API subset used by the workspace benches
//! (`benchmark_group`, `sample_size`, `measurement_time`, `warm_up_time`,
//! `bench_function`, `iter`, `criterion_group!`, `criterion_main!`) as a
//! plain wall-clock harness: each benchmark runs for the configured
//! measurement time and reports mean iteration latency. No statistics, no
//! reports — swap the path dependency for the real crates.io `criterion` to
//! get those back.

use std::time::{Duration, Instant};

/// Entry point handed to the benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        self
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        // Warm-up: run without recording.
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            f(&mut bencher);
        }
        bencher.iterations = 0;
        bencher.elapsed = Duration::ZERO;
        let deadline = Instant::now() + self.measurement_time;
        let mut samples = 0usize;
        while samples < self.sample_size || Instant::now() < deadline {
            f(&mut bencher);
            samples += 1;
            if samples >= self.sample_size && Instant::now() >= deadline {
                break;
            }
        }
        let mean = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
        let label = if self.name.is_empty() {
            id.as_ref().to_string()
        } else {
            format!("{}/{}", self.name, id.as_ref())
        };
        println!(
            "{label:<40} {:>10} iters  mean {:.6} s",
            bencher.iterations, mean
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Per-benchmark timer driver.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        std::hint::black_box(out);
    }
}

/// Prevent the optimizer from discarding a value (std-backed).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

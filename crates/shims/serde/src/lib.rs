//! No-op stand-in for `serde`, used because this repository builds in an
//! offline environment. Only the derive macro names are provided; they expand
//! to nothing (see the sibling `serde_derive` shim). Swap this path
//! dependency for the real crates.io `serde` to restore serialization.

pub use serde_derive::{Deserialize, Serialize};

//! Criterion micro-benchmark for the paper's Table 4: one foreign tenant on the PostgreSQL-like engine.
//! Measures the conversion-heavy queries Q1, Q6 and Q22 at every optimization
//! level; the full 22-query table is produced by `cargo run -p bench --bin tables -- --table 4`.

use std::time::Duration;

use bench::{measure_cell, table_deployment, DatasetSpec, LEVELS};
use criterion::{criterion_group, criterion_main, Criterion};
use mth::queries;

fn bench_table(c: &mut Criterion) {
    let dep = table_deployment(true);
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));
    for &query in &queries::CONVERSION_HEAVY {
        for level in LEVELS {
            let id = format!("q{query}_{}", level.label());
            group.bench_function(&id, |b| {
                b.iter(|| {
                    measure_cell(&dep, DatasetSpec::SingleForeign, query, level, 1)
                        .expect("query runs")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table);
criterion_main!(benches);

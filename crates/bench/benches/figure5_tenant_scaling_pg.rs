//! Criterion micro-benchmark for the paper's Figure 5: tenant scaling of the
//! conversion-heavy queries on the PostgreSQL-like engine (UDF cache on). The full sweep with baseline
//! normalisation is produced by `cargo run -p bench --bin figures -- --figure 5`.

use std::time::Duration;

use bench::{measure_cell, scaling_deployment, DatasetSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use mth::queries;
use mtrewrite::OptLevel;

fn bench_figure(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));
    for tenants in [1_i64, 10, 100] {
        let dep = scaling_deployment(tenants, true, 0.1);
        for &query in &queries::CONVERSION_HEAVY {
            for level in [OptLevel::O4, OptLevel::InlineOnly] {
                let id = format!("t{tenants}_q{query}_{}", level.label());
                group.bench_function(&id, |b| {
                    b.iter(|| {
                        measure_cell(&dep, DatasetSpec::All, query, level, 1).expect("query runs")
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_figure);
criterion_main!(benches);

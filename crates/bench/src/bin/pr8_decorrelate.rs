//! Benchmark for sub-query decorrelation (PR 8): compare unnested
//! semi-/anti-/aggregate-join plans (`EngineConfig` default) against the
//! interpreted correlated baseline (`without_decorrelation()`) on the same
//! generated data.
//!
//! Runs the decorrelating MT-H queries — Q22 (correlated `NOT EXISTS`, the
//! motivating two-orders-of-magnitude case), Q4 (correlated `EXISTS`) and
//! Q17 (correlated scalar `AVG`) — at the o2 level with scope `D = {1..10}`
//! on a 10-tenant deployment, and writes wall-clock plus `rows_scanned` and
//! `subqueries_unnested` counters to `BENCH_pr8.json`.
//!
//! The gates are deterministic and always enforced (CI runs them too):
//!
//! * results must be byte-identical between the decorrelated and baseline
//!   runs on every query;
//! * every decorrelated run must report `subqueries_unnested > 0` and the
//!   baseline must never report it;
//! * Q22's baseline must scan at least `--min-scan-ratio` times the rows of
//!   the decorrelated plan (default **50**, ~100x at the default scale) —
//!   the scan-count cut is a property of the plans, not the host.
//!
//! The wall-clock speedup floor (`--min-speedup`) defaults to **0** per the
//! PR 2 convention — shared CI runners are too noisy for timing asserts; on
//! a quiet host `--min-speedup 1.0` asserts "not slower".
//!
//! ```text
//! cargo run --release -p bench --bin pr8_decorrelate                # scale 4, 3 runs
//! cargo run --release -p bench --bin pr8_decorrelate -- --scale 2.0 --runs 1
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use mtbase::EngineConfig;
use mth::params::{MthConfig, TenantDistribution};
use mth::{gen, loader, queries, MthDeployment};
use mtrewrite::OptLevel;

const TENANTS: i64 = 10;

/// The MT-H queries whose plans decorrelate, with the motivating Q22 first —
/// it alone carries the scan-ratio gate.
const QUERIES: [usize; 3] = [22, 4, 17];

struct Cell {
    seconds: f64,
    rows_scanned: u64,
    subqueries_unnested: u64,
    result: mtbase::ResultSet,
}

fn measure(dep: &MthDeployment, query: usize, runs: usize) -> Cell {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    let ids: Vec<String> = (1..=TENANTS).map(|t| t.to_string()).collect();
    conn.execute(&format!("SET SCOPE = \"IN ({})\"", ids.join(", ")))
        .expect("scope");
    let sql = queries::query(query);
    let mut best = f64::INFINITY;
    let mut stats = conn.last_query_stats();
    let mut result = mtbase::ResultSet::default();
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let rs = conn.query(&sql).unwrap_or_else(|e| panic!("Q{query}: {e}"));
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
        }
        stats = conn.last_query_stats();
        result = rs;
    }
    Cell {
        seconds: best,
        rows_scanned: stats.rows_scanned,
        subqueries_unnested: stats.subqueries_unnested,
        result,
    }
}

fn cell_json(cell: &Cell) -> String {
    format!(
        "{{\"seconds\": {:.6}, \"rows_scanned\": {}, \"subqueries_unnested\": {}, \"result_rows\": {}}}",
        cell.seconds,
        cell.rows_scanned,
        cell.subqueries_unnested,
        cell.result.rows.len()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 4.0_f64;
    let mut runs = 3usize;
    let mut min_speedup = 0.0_f64;
    let mut min_scan_ratio = 50.0_f64;
    let mut out_path = "BENCH_pr8.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale expects a number");
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs expects a count");
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = args[i].parse().expect("--min-speedup expects a number");
            }
            "--min-scan-ratio" => {
                i += 1;
                min_scan_ratio = args[i].parse().expect("--min-scan-ratio expects a number");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: pr8_decorrelate [--scale F] [--runs N] [--min-speedup F] [--min-scan-ratio F] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let config = MthConfig {
        scale,
        tenants: TENANTS,
        distribution: TenantDistribution::Uniform,
        seed: 42,
    };
    eprintln!("generating MT-H data (scale {scale}, {TENANTS} tenants) ...");
    let data = gen::generate(&config);
    let dep_decorr = loader::load_from_data(config, EngineConfig::postgres_like(), &data);
    let dep_baseline = loader::load_from_data(
        config,
        EngineConfig::postgres_like().without_decorrelation(),
        &data,
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"subquery decorrelation (PR 8)\",").unwrap();
    writeln!(
        json,
        "  \"config\": {{\"scale\": {scale}, \"tenants\": {TENANTS}, \"scope\": \"IN (1..{TENANTS})\", \"level\": \"o2\", \"runs\": {runs}}},"
    )
    .unwrap();
    writeln!(json, "  \"cells\": [").unwrap();

    let mut ok = true;
    let mut q22_scan_ratio = 0.0_f64;
    let mut best_speedup = 0.0_f64;
    for (n, &query) in QUERIES.iter().enumerate() {
        eprintln!("measuring Q{query} ...");
        let baseline = measure(&dep_baseline, query, runs);
        let decorr = measure(&dep_decorr, query, runs);
        let speedup = baseline.seconds / decorr.seconds.max(1e-9);
        let scan_ratio = baseline.rows_scanned as f64 / decorr.rows_scanned.max(1) as f64;
        best_speedup = best_speedup.max(speedup);
        if query == 22 {
            q22_scan_ratio = scan_ratio;
        }
        println!(
            "Q{query:<3} baseline {:>9.6}s / {:>9} rows   decorrelated {:>9.6}s / {:>7} rows   speedup {speedup:.2}x   scan cut {scan_ratio:.1}x",
            baseline.seconds, baseline.rows_scanned, decorr.seconds, decorr.rows_scanned
        );
        if baseline.result != decorr.result {
            eprintln!("ERROR: Q{query}: results differ between decorrelated and baseline runs");
            ok = false;
        }
        if decorr.subqueries_unnested == 0 {
            eprintln!("ERROR: Q{query}: the decorrelated run did not unnest a sub-query");
            ok = false;
        }
        if baseline.subqueries_unnested != 0 {
            eprintln!("ERROR: Q{query}: the baseline run reported unnested sub-queries");
            ok = false;
        }
        writeln!(
            json,
            "    {{\"query\": \"Q{query}\", \"baseline\": {}, \"decorrelated\": {}, \"speedup\": {speedup:.3}, \"scan_ratio\": {scan_ratio:.3}, \"identical_results\": {}}}{}",
            cell_json(&baseline),
            cell_json(&decorr),
            baseline.result == decorr.result,
            if n + 1 == QUERIES.len() { "" } else { "," }
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"q22_scan_ratio\": {q22_scan_ratio:.3},").unwrap();
    writeln!(json, "  \"best_speedup\": {best_speedup:.3}").unwrap();
    writeln!(json, "}}").unwrap();

    // The scan-ratio gate is deterministic (plan property); the wall-clock
    // floor depends on the host and defaults to 0 (see module docs).
    if q22_scan_ratio < min_scan_ratio {
        eprintln!(
            "ERROR: Q22 scan cut {q22_scan_ratio:.1}x is below the required {min_scan_ratio:.1}x"
        );
        ok = false;
    }
    if best_speedup < min_speedup {
        eprintln!(
            "ERROR: best decorrelation speedup {best_speedup:.2}x is below the required {min_speedup:.2}x"
        );
        ok = false;
    }

    std::fs::write(&out_path, json).expect("write results file");
    eprintln!("wrote {out_path}");
    if !ok {
        std::process::exit(1);
    }
}

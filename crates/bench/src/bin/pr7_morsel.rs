//! Benchmark for morsel-driven parallel execution (PR 7): compare the
//! worker-pool scheduler (`with_parallel_scan(4)`) against the serial
//! baseline on the same generated data, across the {dict, no-dict} ×
//! {columnar, row} layout cross.
//!
//! Runs Q1 (grouped aggregate — per-morsel partial states merged at the
//! end), Q6 (global aggregate) and a residual-conjunct probe (`l_quantity +
//! 0 < 25` defeats the fast-predicate compiler, so the scan keeps an
//! interpreted conjunct — the shape that used to force a serial fallback) at
//! the o2 level with scope `D = {1..10}` on a 10-tenant deployment, and
//! writes wall-clock plus engagement counters to `BENCH_pr7.json`.
//!
//! The gates are deterministic and always enforced (CI runs them too):
//!
//! * results must be byte-identical between the pooled and serial runs in
//!   every layout cell;
//! * both runs must visit the same number of rows (`rows_scanned`);
//! * the pooled run must dispatch morsels to more than one worker
//!   (`morsels_dispatched > 0`, `morsel_workers > 1`) and merge per-morsel
//!   partial aggregate states (`partial_agg_merges > 0`) on every query —
//!   including the interpreted-residual probe;
//! * the serial run must report none of those counters.
//!
//! The wall-clock speedup floor (`--min-speedup`) defaults to **0** — the
//! container CI runs on offers a single vCPU, where a worker pool cannot
//! beat the serial loop; the floor is an opt-in assert for multi-core hosts
//! (`--min-speedup 1.0`: "not slower").
//!
//! ```text
//! cargo run --release -p bench --bin pr7_morsel                 # scale 4, 3 runs
//! cargo run --release -p bench --bin pr7_morsel -- --scale 2.0 --runs 1 --min-speedup 0
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use mtbase::EngineConfig;
use mth::params::{MthConfig, TenantDistribution};
use mth::{gen, loader, queries, MthDeployment};
use mtrewrite::OptLevel;

const TENANTS: i64 = 10;

/// Queries under measurement: label plus SQL. The residual probe is not an
/// MT-H query — its arithmetic-on-column conjunct exists purely to pin that
/// hybrid scans engage the pool.
fn query_set() -> Vec<(&'static str, String)> {
    vec![
        ("Q1", queries::query(1)),
        ("Q6", queries::query(6)),
        (
            "residual",
            "SELECT COUNT(*) AS cnt, SUM(l_extendedprice) AS total FROM lineitem \
             WHERE l_quantity + 0 < 25"
                .to_string(),
        ),
    ]
}

struct Cell {
    seconds: f64,
    rows_scanned: u64,
    morsels_dispatched: u64,
    morsel_workers: u64,
    partial_agg_merges: u64,
    result: mtbase::ResultSet,
}

fn measure(dep: &MthDeployment, sql: &str, label: &str, runs: usize) -> Cell {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    let ids: Vec<String> = (1..=TENANTS).map(|t| t.to_string()).collect();
    conn.execute(&format!("SET SCOPE = \"IN ({})\"", ids.join(", ")))
        .expect("scope");
    let mut best = f64::INFINITY;
    let mut stats = conn.last_query_stats();
    let mut result = mtbase::ResultSet::default();
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let rs = conn.query(sql).unwrap_or_else(|e| panic!("{label}: {e}"));
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
        }
        stats = conn.last_query_stats();
        result = rs;
    }
    Cell {
        seconds: best,
        rows_scanned: stats.rows_scanned,
        morsels_dispatched: stats.morsels_dispatched,
        morsel_workers: stats.morsel_workers,
        partial_agg_merges: stats.partial_agg_merges,
        result,
    }
}

fn cell_json(cell: &Cell) -> String {
    format!(
        "{{\"seconds\": {:.6}, \"rows_scanned\": {}, \"morsels_dispatched\": {}, \"morsel_workers\": {}, \"partial_agg_merges\": {}, \"result_rows\": {}}}",
        cell.seconds,
        cell.rows_scanned,
        cell.morsels_dispatched,
        cell.morsel_workers,
        cell.partial_agg_merges,
        cell.result.rows.len()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 4.0_f64;
    let mut runs = 3usize;
    let mut min_speedup = 0.0_f64;
    let mut out_path = "BENCH_pr7.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale expects a number");
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs expects a count");
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = args[i].parse().expect("--min-speedup expects a number");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: pr7_morsel [--scale F] [--runs N] [--min-speedup F] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let config = MthConfig {
        scale,
        tenants: TENANTS,
        distribution: TenantDistribution::Uniform,
        seed: 42,
    };
    eprintln!("generating MT-H data (scale {scale}, {TENANTS} tenants) ...");
    let data = gen::generate(&config);

    // The {dict, no-dict} × {columnar, row} layout cross; each layout loads a
    // pooled and a serial deployment from the same generated rows.
    type LayoutConfig = fn() -> EngineConfig;
    let layouts: Vec<(&str, LayoutConfig)> = vec![
        ("dict/columnar", EngineConfig::postgres_like),
        ("nodict/columnar", || {
            EngineConfig::postgres_like().without_dictionary_encoding()
        }),
        ("dict/row", || {
            EngineConfig::postgres_like().without_columnar_scan()
        }),
        ("nodict/row", || {
            EngineConfig::postgres_like()
                .without_columnar_scan()
                .without_dictionary_encoding()
        }),
    ];
    let queries = query_set();

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(
        json,
        "  \"benchmark\": \"morsel-driven parallel execution (PR 7)\","
    )
    .unwrap();
    writeln!(
        json,
        "  \"config\": {{\"scale\": {scale}, \"tenants\": {TENANTS}, \"scope\": \"IN (1..{TENANTS})\", \"level\": \"o2\", \"runs\": {runs}, \"workers\": 4}},"
    )
    .unwrap();
    writeln!(json, "  \"cells\": [").unwrap();

    let mut ok = true;
    let mut best_speedup = 0.0_f64;
    let cell_count = layouts.len() * queries.len();
    let mut emitted = 0usize;
    for (layout, make_config) in &layouts {
        let dep_serial = loader::load_from_data(config, make_config(), &data);
        let dep_morsel = loader::load_from_data(config, make_config().with_parallel_scan(4), &data);
        for (label, sql) in &queries {
            eprintln!("measuring {label} on {layout} ...");
            let serial = measure(&dep_serial, sql, label, runs);
            let morsel = measure(&dep_morsel, sql, label, runs);
            let speedup = serial.seconds / morsel.seconds.max(1e-9);
            best_speedup = best_speedup.max(speedup);
            println!(
                "{label:<9} {layout:<16} serial {:>9.6}s   morsel {:>9.6}s   speedup {speedup:.2}x   {} morsels / {} workers / {} partial merges",
                serial.seconds,
                morsel.seconds,
                morsel.morsels_dispatched,
                morsel.morsel_workers,
                morsel.partial_agg_merges
            );
            if serial.result != morsel.result {
                eprintln!(
                    "ERROR: {label} on {layout}: results differ between serial and morsel runs"
                );
                ok = false;
            }
            if serial.rows_scanned != morsel.rows_scanned {
                eprintln!("ERROR: {label} on {layout}: rows_scanned differs between serial and morsel runs");
                ok = false;
            }
            if morsel.morsels_dispatched == 0 || morsel.morsel_workers <= 1 {
                eprintln!("ERROR: {label} on {layout}: the pooled run did not engage the morsel scheduler");
                ok = false;
            }
            if morsel.partial_agg_merges == 0 {
                eprintln!("ERROR: {label} on {layout}: the pooled run did not merge partial aggregate states");
                ok = false;
            }
            if serial.morsels_dispatched != 0 || serial.partial_agg_merges != 0 {
                eprintln!("ERROR: {label} on {layout}: the serial run reported morsel counters");
                ok = false;
            }
            emitted += 1;
            writeln!(
                json,
                "    {{\"query\": \"{label}\", \"layout\": \"{layout}\", \"serial\": {}, \"morsel\": {}, \"speedup\": {speedup:.3}, \"identical_results\": {}}}{}",
                cell_json(&serial),
                cell_json(&morsel),
                serial.result == morsel.result,
                if emitted == cell_count { "" } else { "," }
            )
            .unwrap();
        }
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"best_speedup\": {best_speedup:.3}").unwrap();
    writeln!(json, "}}").unwrap();

    // Engagement and identity gates above are deterministic; the wall-clock
    // floor depends on core count and defaults to 0 (see module docs).
    if best_speedup < min_speedup {
        eprintln!(
            "ERROR: best morsel speedup {best_speedup:.2}x is below the required {min_speedup:.2}x"
        );
        ok = false;
    }

    std::fs::write(&out_path, json).expect("write results file");
    eprintln!("wrote {out_path}");
    if !ok {
        std::process::exit(1);
    }
}

//! Benchmark for the write-ahead log and crash recovery (PR 6): measure the
//! write-path cost of durability (the same MT-H load into an in-memory
//! deployment vs. one logging every batch to a WAL), the wall-clock of
//! recovering that deployment from its log, and gate that durability is
//! *invisible* to queries — all 22 MT-H queries must return identical
//! results with identical scan counters on the in-memory deployment, the
//! durable deployment, and the recovered deployment.
//!
//! The gates are deterministic and always enforced (CI runs them too):
//!
//! * all 22 queries: identical results, `rows_scanned` and
//!   `partitions_pruned` across {memory, WAL, recovered};
//! * the WAL file is non-empty and recovery replays it successfully;
//! * the recovered writer accepts a new transaction (an INSERT lands).
//!
//! The wall-clock bounds (`--max-overhead`, the WAL/memory load-time ratio,
//! and `--max-recovery-seconds`) are enforced locally per the PR 2
//! convention; CI passes `0` for both because shared runners are too noisy
//! for timing asserts.
//!
//! ```text
//! cargo run --release -p bench --bin pr6_durability                 # scale 2, 3 runs
//! cargo run --release -p bench --bin pr6_durability -- --scale 0.2 --max-overhead 0 --max-recovery-seconds 0
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use mtbase::{EngineConfig, MtBase, ResultSet, Value};
use mth::params::{MthConfig, TenantDistribution};
use mth::{gen, loader, queries};
use mtrewrite::OptLevel;

const TENANTS: i64 = 10;
const TABLES: [&str; 8] = [
    "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
];

/// Result + scan counters: identical counters prove the recovered physical
/// layout (buckets, partitions, dictionaries) matches, not just the rows.
type Fingerprint = (ResultSet, u64, u64);

fn fingerprint(server: &Arc<MtBase>) -> Vec<Fingerprint> {
    let mut conn = server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    let ids: Vec<String> = (1..=TENANTS).map(|t| t.to_string()).collect();
    conn.execute(&format!("SET SCOPE = \"IN ({})\"", ids.join(", ")))
        .expect("scope");
    queries::all_query_numbers()
        .map(|q| {
            let rs = conn
                .query(&queries::query(q))
                .unwrap_or_else(|e| panic!("Q{q}: {e}"));
            let stats = conn.last_query_stats();
            (rs, stats.rows_scanned, stats.partitions_pruned)
        })
        .collect()
}

/// Compare two fingerprints; print one error per diverging query.
fn check(reference: &[Fingerprint], other: &[Fingerprint], label: &str) -> bool {
    let mut ok = true;
    for (i, (r, o)) in reference.iter().zip(other.iter()).enumerate() {
        if r != o {
            eprintln!("ERROR: Q{} differs on {label}", i + 1);
            ok = false;
        }
    }
    ok
}

fn total_rows(server: &Arc<MtBase>) -> u64 {
    TABLES
        .iter()
        .map(|t| {
            match server
                .raw_query(&format!("SELECT COUNT(*) FROM {t}"))
                .expect("count")
                .rows[0][0]
            {
                Value::Int(n) => n as u64,
                ref other => panic!("unexpected COUNT(*) value {other:?}"),
            }
        })
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 2.0_f64;
    let mut runs = 3usize;
    let mut max_overhead = 50.0_f64;
    let mut max_recovery_seconds = 120.0_f64;
    let mut out_path = "BENCH_pr6.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale expects a number");
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs expects a count");
            }
            "--max-overhead" => {
                i += 1;
                max_overhead = args[i].parse().expect("--max-overhead expects a number");
            }
            "--max-recovery-seconds" => {
                i += 1;
                max_recovery_seconds = args[i]
                    .parse()
                    .expect("--max-recovery-seconds expects a number");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: pr6_durability [--scale F] [--runs N] [--max-overhead F] [--max-recovery-seconds F] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let config = MthConfig {
        scale,
        tenants: TENANTS,
        distribution: TenantDistribution::Uniform,
        seed: 42,
    };
    eprintln!("generating MT-H data (scale {scale}, {TENANTS} tenants) ...");
    let data = gen::generate(&config);
    let engine_config = EngineConfig::postgres_like;

    let wal_path = std::env::temp_dir().join(format!("pr6-durability-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal_path);

    // Write path: the identical load, in memory vs. logged. Best-of-`runs`
    // for both (each run loads a fresh deployment; the WAL run starts from a
    // fresh log file).
    let mut memory_seconds = f64::INFINITY;
    let mut dep_memory = None;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let dep = loader::load_from_data(config, engine_config(), &data);
        memory_seconds = memory_seconds.min(start.elapsed().as_secs_f64());
        dep_memory = Some(dep);
    }
    let dep_memory = dep_memory.expect("at least one load run");

    let mut wal_seconds = f64::INFINITY;
    let mut dep_wal = None;
    for _ in 0..runs.max(1) {
        let _ = std::fs::remove_file(&wal_path);
        let start = Instant::now();
        let dep = loader::load_durable_from_data(config, engine_config(), &data, &wal_path)
            .expect("durable load");
        wal_seconds = wal_seconds.min(start.elapsed().as_secs_f64());
        dep_wal = Some(dep);
    }
    let dep_wal = dep_wal.expect("at least one durable load run");

    let rows = total_rows(&dep_memory.server);
    let wal_bytes = std::fs::metadata(&wal_path).expect("WAL metadata").len();
    let overhead = wal_seconds / memory_seconds.max(1e-9);
    println!(
        "load: {rows} rows   memory {memory_seconds:.3}s   wal {wal_seconds:.3}s   overhead {overhead:.2}x   log {wal_bytes} bytes"
    );

    let mut ok = true;
    eprintln!("running the 22-query gate on the in-memory and durable deployments ...");
    let reference = fingerprint(&dep_memory.server);
    let wal_fp = fingerprint(&dep_wal.server);
    let wal_identical = check(&reference, &wal_fp, "WAL vs memory");
    ok &= wal_identical;

    // Recovery: drop the durable deployment (closing the log) and replay it.
    drop(dep_wal);
    let start = Instant::now();
    let recovered = loader::reopen_durable(engine_config(), &wal_path).expect("recovery from WAL");
    let recovery_seconds = start.elapsed().as_secs_f64();
    let recovery_rows_per_sec = rows as f64 / recovery_seconds.max(1e-9);
    println!(
        "recovery: {recovery_seconds:.3}s for {rows} rows ({recovery_rows_per_sec:.0} rows/s)"
    );

    eprintln!("running the 22-query gate on the recovered deployment ...");
    let recovered_fp = fingerprint(&recovered);
    let recovered_identical = check(&reference, &recovered_fp, "recovered vs memory");
    ok &= recovered_identical;

    // The recovered writer must accept a new transaction.
    let before = total_rows(&recovered);
    let mut row = recovered
        .raw_query("SELECT * FROM lineitem")
        .expect("scan lineitem")
        .rows[0]
        .clone();
    row[0] = Value::Int(1);
    let write_ok =
        recovered.load_rows("lineitem", vec![row]).is_ok() && total_rows(&recovered) == before + 1;
    if !write_ok {
        eprintln!("ERROR: the recovered deployment rejected a post-recovery INSERT");
        ok = false;
    }
    if wal_bytes == 0 {
        eprintln!("ERROR: the durable load produced an empty WAL");
        ok = false;
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(
        json,
        "  \"benchmark\": \"write-ahead logging, crash recovery and snapshot reads (PR 6)\","
    )
    .unwrap();
    writeln!(
        json,
        "  \"config\": {{\"scale\": {scale}, \"tenants\": {TENANTS}, \"scope\": \"IN (1..{TENANTS})\", \"level\": \"o2\", \"runs\": {runs}}},"
    )
    .unwrap();
    writeln!(
        json,
        "  \"load\": {{\"rows\": {rows}, \"memory_seconds\": {memory_seconds:.6}, \"wal_seconds\": {wal_seconds:.6}, \"wal_overhead\": {overhead:.3}, \"wal_bytes\": {wal_bytes}, \"memory_rows_per_sec\": {:.0}, \"wal_rows_per_sec\": {:.0}}},",
        rows as f64 / memory_seconds.max(1e-9),
        rows as f64 / wal_seconds.max(1e-9)
    )
    .unwrap();
    writeln!(
        json,
        "  \"recovery\": {{\"seconds\": {recovery_seconds:.6}, \"rows_per_sec\": {recovery_rows_per_sec:.0}, \"replayed_bytes\": {wal_bytes}}},"
    )
    .unwrap();
    writeln!(
        json,
        "  \"identical_results\": {{\"queries_checked\": {}, \"wal_vs_memory\": {wal_identical}, \"recovered_vs_memory\": {recovered_identical}}},",
        queries::QUERY_COUNT
    )
    .unwrap();
    writeln!(json, "  \"post_recovery_write_ok\": {write_ok}").unwrap();
    writeln!(json, "}}").unwrap();

    // Deterministic gates above; the wall-clock bounds are host-dependent
    // and therefore skippable (`0`, the CI setting).
    if max_overhead > 0.0 && overhead > max_overhead {
        eprintln!(
            "ERROR: WAL write overhead {overhead:.2}x exceeds the allowed {max_overhead:.2}x"
        );
        ok = false;
    }
    if max_recovery_seconds > 0.0 && recovery_seconds > max_recovery_seconds {
        eprintln!(
            "ERROR: recovery took {recovery_seconds:.2}s, above the allowed {max_recovery_seconds:.2}s"
        );
        ok = false;
    }

    std::fs::write(&out_path, json).expect("write results file");
    let _ = std::fs::remove_file(&wal_path);
    eprintln!("wrote {out_path}");
    if !ok {
        std::process::exit(1);
    }
}

//! Benchmark for dictionary-encoded string columns (PR 5): compare scans and
//! aggregations over dictionary-encoded columnar buckets (code-space
//! predicate kernels + code-space grouping) against the plain-`Arc<str>`
//! columnar baseline on the same generated data.
//!
//! Runs Q1 (code-space grouping on `l_returnflag, l_linestatus`), Q6
//! (dictionary-decoding materialization), Q12 (`l_shipmode IN` as a code
//! kernel) and Q14 (LIKE over `p_type` data) at the o2 level with scope
//! `D = {1..10}` on a 10-tenant deployment, once with
//! `EngineConfig::dictionary_encoding` (the default) and once without
//! (`without_dictionary_encoding`), and writes wall-clock plus engagement
//! counters to `BENCH_pr5.json`.
//!
//! The gates are deterministic and always enforced (CI runs them too):
//!
//! * results must be byte-identical between the two configurations;
//! * the dictionary run must engage code space (`dict_kernel_rows > 0`) on
//!   every query, and the baseline run must never report it;
//! * both runs must visit the same number of rows (`rows_scanned`).
//!
//! The headline metric is the **per-row string-work reduction**: string
//! predicates resolve against the dictionary once (≤ distinct-count
//! evaluations per scan instead of one per row) and dictionary group keys
//! hash `u32` codes instead of strings — `dict_kernel_rows` makes the
//! engagement observable. The wall-clock speedup floor (`--min-speedup`,
//! default 1.0: "not slower") is enforced locally per the PR 2 convention;
//! CI passes `--min-speedup 0` because shared runners are too noisy for
//! timing asserts.
//!
//! ```text
//! cargo run --release -p bench --bin pr5_dictionary                # scale 8, 3 runs
//! cargo run --release -p bench --bin pr5_dictionary -- --scale 1.0 --runs 1 --min-speedup 0
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use mtbase::EngineConfig;
use mth::params::{MthConfig, TenantDistribution};
use mth::{gen, loader, queries, MthDeployment};
use mtrewrite::OptLevel;

const TENANTS: i64 = 10;
const QUERIES: [usize; 4] = [1, 6, 12, 14];

struct Cell {
    seconds: f64,
    rows_scanned: u64,
    dict_kernel_rows: u64,
    dict_columns: u64,
    result: mtbase::ResultSet,
}

fn measure(dep: &MthDeployment, query: usize, runs: usize) -> Cell {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    let ids: Vec<String> = (1..=TENANTS).map(|t| t.to_string()).collect();
    conn.execute(&format!("SET SCOPE = \"IN ({})\"", ids.join(", ")))
        .expect("scope");
    let sql = queries::query(query);
    let mut best = f64::INFINITY;
    let mut stats = conn.last_query_stats();
    let mut result = mtbase::ResultSet::default();
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let rs = conn.query(&sql).unwrap_or_else(|e| panic!("Q{query}: {e}"));
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
        }
        stats = conn.last_query_stats();
        result = rs;
    }
    Cell {
        seconds: best,
        rows_scanned: stats.rows_scanned,
        dict_kernel_rows: stats.dict_kernel_rows,
        dict_columns: stats.dict_columns,
        result,
    }
}

fn cell_json(cell: &Cell) -> String {
    format!(
        "{{\"seconds\": {:.6}, \"rows_scanned\": {}, \"dict_kernel_rows\": {}, \"dict_columns\": {}, \"result_rows\": {}}}",
        cell.seconds,
        cell.rows_scanned,
        cell.dict_kernel_rows,
        cell.dict_columns,
        cell.result.rows.len()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 8.0_f64;
    let mut runs = 3usize;
    let mut min_speedup = 1.0_f64;
    let mut out_path = "BENCH_pr5.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale expects a number");
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs expects a count");
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = args[i].parse().expect("--min-speedup expects a number");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: pr5_dictionary [--scale F] [--runs N] [--min-speedup F] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let config = MthConfig {
        scale,
        tenants: TENANTS,
        distribution: TenantDistribution::Uniform,
        seed: 42,
    };
    eprintln!("generating MT-H data (scale {scale}, {TENANTS} tenants) ...");
    let data = gen::generate(&config);
    let dep_plain = loader::load_from_data(
        config,
        EngineConfig::postgres_like().without_dictionary_encoding(),
        &data,
    );
    let dep_dict = loader::load_from_data(config, EngineConfig::postgres_like(), &data);

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(
        json,
        "  \"benchmark\": \"dictionary-encoded string columns with code-space kernels (PR 5)\","
    )
    .unwrap();
    writeln!(
        json,
        "  \"config\": {{\"scale\": {scale}, \"tenants\": {TENANTS}, \"scope\": \"IN (1..{TENANTS})\", \"level\": \"o2\", \"runs\": {runs}}},"
    )
    .unwrap();
    writeln!(json, "  \"queries\": [").unwrap();

    let mut ok = true;
    let mut best_speedup = 0.0_f64;
    for (qi, &query) in QUERIES.iter().enumerate() {
        eprintln!("measuring Q{query} ...");
        let plain = measure(&dep_plain, query, runs);
        let dict = measure(&dep_dict, query, runs);
        let speedup = plain.seconds / dict.seconds.max(1e-9);
        best_speedup = best_speedup.max(speedup);
        println!(
            "Q{query:<2}  plain {:>9.6}s   dict {:>9.6}s   speedup {speedup:.2}x   {} code-space rows over {} scanned ({} dict columns)",
            plain.seconds, dict.seconds, dict.dict_kernel_rows, dict.rows_scanned, dict.dict_columns
        );
        if plain.result != dict.result {
            eprintln!("ERROR: Q{query} results differ between plain and dictionary scans");
            ok = false;
        }
        if dict.dict_kernel_rows == 0 {
            eprintln!("ERROR: Q{query} did not engage the dictionary code-space path");
            ok = false;
        }
        if plain.dict_kernel_rows != 0 {
            eprintln!("ERROR: Q{query} plain run reported dictionary code-space rows");
            ok = false;
        }
        if plain.rows_scanned != dict.rows_scanned {
            eprintln!("ERROR: Q{query} scan counters differ between plain and dictionary scans");
            ok = false;
        }
        writeln!(
            json,
            "    {{\"query\": {query}, \"plain\": {}, \"dict\": {}, \"speedup\": {speedup:.3}, \"identical_results\": {}}}{}",
            cell_json(&plain),
            cell_json(&dict),
            plain.result == dict.result,
            if qi + 1 == QUERIES.len() { "" } else { "," }
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"best_speedup\": {best_speedup:.3}").unwrap();
    writeln!(json, "}}").unwrap();

    // Deterministic gates above; the wall-clock floor is host-dependent and
    // therefore skippable (`--min-speedup 0`, the CI setting).
    if best_speedup < min_speedup {
        eprintln!(
            "ERROR: best dictionary speedup {best_speedup:.2}x is below the required {min_speedup:.2}x"
        );
        ok = false;
    }

    std::fs::write(&out_path, json).expect("write results file");
    eprintln!("wrote {out_path}");
    if !ok {
        std::process::exit(1);
    }
}

//! Benchmark for multi-statement transactions and group commit (PR 10):
//! measure commit throughput and fsyncs-per-commit for a single writer vs.
//! N concurrent writers, with group commit on vs. off, and gate that the
//! write path batches flushes without changing a single query result.
//!
//! The gates are deterministic and always enforced (CI runs them too):
//!
//! * with group commit ON and concurrent writers, `wal_fsyncs /
//!   wal_commits` drops **below one** — concurrent committers share a
//!   leader's flush instead of each issuing their own;
//! * with group commit OFF, every commit pays its own fsync (the ratio
//!   never drops below one);
//! * a `BEGIN … COMMIT` transaction of K statements appends exactly **one**
//!   WAL commit marker (and counts as one transaction), not K;
//! * every committed row survives a drop-and-recover cycle of each
//!   deployment;
//! * the workload writes only a scratch table, so all 22 MT-H queries
//!   return identical results and scan counters before the workload, after
//!   it, across both configurations, and after recovery.
//!
//! The wall-clock bound (`--min-speedup`, group-on vs. group-off concurrent
//! commit throughput) is enforced locally per the PR 2 convention; CI
//! passes `0` because shared runners are too noisy for timing asserts.
//!
//! ```text
//! cargo run --release -p bench --bin pr10_txn                # scale 0.2, 4 writers
//! cargo run --release -p bench --bin pr10_txn -- --scale 0.05 --runs 1 --min-speedup 0
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use mtbase::{EngineConfig, MtBase, ResultSet, Value};
use mth::params::{MthConfig, TenantDistribution};
use mth::{gen, loader, queries};
use mtrewrite::OptLevel;
use mtsql::ast::Statement;

const TENANTS: i64 = 10;

/// Result + scan counters: identical counters prove the physical layout the
/// queries ran over (buckets, partitions, dictionaries) matches, not just
/// the rows.
type Fingerprint = (ResultSet, u64, u64);

fn fingerprint(server: &Arc<MtBase>) -> Vec<Fingerprint> {
    let mut conn = server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    let ids: Vec<String> = (1..=TENANTS).map(|t| t.to_string()).collect();
    conn.execute(&format!("SET SCOPE = \"IN ({})\"", ids.join(", ")))
        .expect("scope");
    queries::all_query_numbers()
        .map(|q| {
            let rs = conn
                .query(&queries::query(q))
                .unwrap_or_else(|e| panic!("Q{q}: {e}"));
            let stats = conn.last_query_stats();
            (rs, stats.rows_scanned, stats.partitions_pruned)
        })
        .collect()
}

/// Compare two fingerprints; print one error per diverging query.
fn check(reference: &[Fingerprint], other: &[Fingerprint], label: &str) -> bool {
    let mut ok = true;
    for (i, (r, o)) in reference.iter().zip(other.iter()).enumerate() {
        if r != o {
            eprintln!("ERROR: Q{} differs on {label}", i + 1);
            ok = false;
        }
    }
    ok
}

fn items_count(server: &Arc<MtBase>) -> i64 {
    match server
        .raw_query("SELECT COUNT(*) FROM Items")
        .expect("count Items")
        .rows[0][0]
    {
        Value::Int(n) => n,
        ref other => panic!("unexpected COUNT(*) value {other:?}"),
    }
}

fn create_items_table(server: &Arc<MtBase>) {
    let ddl = "CREATE TABLE Items SPECIFIC (
        I_item_id INTEGER NOT NULL SPECIFIC,
        I_tag VARCHAR(32) NOT NULL COMPARABLE
    )";
    match mtsql::parse_statement(ddl).expect("DDL parses") {
        Statement::CreateTable(ct) => server.create_table(&ct).expect("create table"),
        _ => panic!("expected CREATE TABLE"),
    }
}

/// One measured leg's numbers, windowed over the engine's shared gauges.
struct LegStats {
    seconds: f64,
    commits: u64,
    fsyncs: u64,
    txn_commits: u64,
}

impl LegStats {
    fn fsyncs_per_commit(&self) -> f64 {
        self.fsyncs as f64 / self.commits.max(1) as f64
    }
    fn commits_per_sec(&self) -> f64 {
        self.commits as f64 / self.seconds.max(1e-9)
    }
}

/// `writers` threads, each committing `commits` single-row auto-commit
/// INSERTs into the scratch table under its own tenant (distinct bucket
/// locks, so the writers never exclude each other).
fn run_writers(server: &Arc<MtBase>, writers: i64, commits: i64, tag: &str) -> LegStats {
    let before = server.stats();
    let start = Instant::now();
    let threads: Vec<_> = (1..=writers)
        .map(|t| {
            let server = Arc::clone(server);
            let tag = tag.to_string();
            std::thread::spawn(move || {
                let mut conn = server.connect(t);
                for i in 0..commits {
                    conn.execute(&format!(
                        "INSERT INTO Items VALUES ({}, '{tag}-{t}')",
                        t * 1_000_000 + i
                    ))
                    .expect("writer insert");
                }
            })
        })
        .collect();
    for handle in threads {
        handle.join().expect("writer thread");
    }
    let seconds = start.elapsed().as_secs_f64();
    let delta = server.stats().delta_from(&before);
    LegStats {
        seconds,
        commits: delta.wal_commits,
        fsyncs: delta.wal_fsyncs,
        txn_commits: delta.txn_commits,
    }
}

/// One writer committing `txns` explicit `BEGIN … COMMIT` transactions of
/// `stmts` INSERTs each — the one-marker-per-transaction leg.
fn run_batched(server: &Arc<MtBase>, txns: i64, stmts: i64) -> LegStats {
    let before = server.stats();
    let start = Instant::now();
    let mut conn = server.connect(1);
    for b in 0..txns {
        conn.execute("BEGIN").expect("BEGIN");
        for i in 0..stmts {
            conn.execute(&format!(
                "INSERT INTO Items VALUES ({}, 'batched')",
                10_000_000 + b * stmts + i
            ))
            .expect("in-txn insert");
        }
        conn.execute("COMMIT").expect("COMMIT");
    }
    let seconds = start.elapsed().as_secs_f64();
    let delta = server.stats().delta_from(&before);
    LegStats {
        seconds,
        commits: delta.wal_commits,
        fsyncs: delta.wal_fsyncs,
        txn_commits: delta.txn_commits,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.2_f64;
    let mut runs = 3usize;
    let mut writers = 4_i64;
    let mut commits = 100_i64;
    let mut min_speedup = 0.8_f64;
    let mut out_path = "BENCH_pr10.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale expects a number");
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs expects a count");
            }
            "--writers" => {
                i += 1;
                writers = args[i].parse().expect("--writers expects a count");
            }
            "--commits" => {
                i += 1;
                commits = args[i].parse().expect("--commits expects a count");
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = args[i].parse().expect("--min-speedup expects a number");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: pr10_txn [--scale F] [--runs N] [--writers N] [--commits N] [--min-speedup F] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(
        writers >= 2,
        "--writers must be at least 2 (the batching gate needs concurrency)"
    );
    assert!(
        writers <= TENANTS,
        "--writers must not exceed the {TENANTS} registered tenants"
    );

    let config = MthConfig {
        scale,
        tenants: TENANTS,
        distribution: TenantDistribution::Uniform,
        seed: 42,
    };
    eprintln!("generating MT-H data (scale {scale}, {TENANTS} tenants) ...");
    let data = gen::generate(&config);

    let pid = std::process::id();
    let wal_on = std::env::temp_dir().join(format!("pr10-txn-group-on-{pid}.wal"));
    let wal_off = std::env::temp_dir().join(format!("pr10-txn-group-off-{pid}.wal"));
    let _ = std::fs::remove_file(&wal_on);
    let _ = std::fs::remove_file(&wal_off);

    eprintln!("loading two durable deployments (group commit on / off) ...");
    let dep_on =
        loader::load_durable_from_data(config, EngineConfig::postgres_like(), &data, &wal_on)
            .expect("durable load (group commit on)");
    let dep_off = loader::load_durable_from_data(
        config,
        EngineConfig::postgres_like().without_group_commit(),
        &data,
        &wal_off,
    )
    .expect("durable load (group commit off)");
    create_items_table(&dep_on.server);
    create_items_table(&dep_off.server);

    let mut ok = true;
    eprintln!("running the 22-query gate before the workload ...");
    let reference = fingerprint(&dep_on.server);
    ok &= check(
        &reference,
        &fingerprint(&dep_off.server),
        "group-off vs group-on (pre)",
    );

    // The measured legs: best-of-`runs` for the timings; the counter gates
    // hold on every run, so they are asserted against the accumulated
    // per-leg deltas (`fold` keeps the fastest run, counters are per-run
    // and identical in shape across runs).
    let mut single_on: Option<LegStats> = None;
    let mut multi_on: Option<LegStats> = None;
    let mut single_off: Option<LegStats> = None;
    let mut multi_off: Option<LegStats> = None;
    let mut batched: Option<LegStats> = None;
    for run in 0..runs.max(1) {
        eprintln!("run {} of {} ...", run + 1, runs.max(1));
        let legs: [(&mut Option<LegStats>, LegStats); 5] = [
            (
                &mut single_on,
                run_writers(&dep_on.server, 1, commits, "s-on"),
            ),
            (
                &mut multi_on,
                run_writers(&dep_on.server, writers, commits, "m-on"),
            ),
            (
                &mut single_off,
                run_writers(&dep_off.server, 1, commits, "s-off"),
            ),
            (
                &mut multi_off,
                run_writers(&dep_off.server, writers, commits, "m-off"),
            ),
            (&mut batched, run_batched(&dep_on.server, commits / 10, 10)),
        ];
        for (best, fresh) in legs {
            // Per-run deterministic gates ride on the freshest sample; the
            // reported timing is the best across runs.
            if best.as_ref().is_none_or(|b| fresh.seconds < b.seconds) {
                *best = Some(fresh);
            }
        }
    }
    let single_on = single_on.expect("at least one run");
    let multi_on = multi_on.expect("at least one run");
    let single_off = single_off.expect("at least one run");
    let multi_off = multi_off.expect("at least one run");
    let batched = batched.expect("at least one run");

    let runs_done = runs.max(1) as i64;
    let batched_txns = commits / 10;
    let expected_on = runs_done * (commits + writers * commits + batched_txns * 10);
    let expected_off = runs_done * (commits + writers * commits);

    println!(
        "single writer   group on : {:8.0} commits/s   {:.3} fsyncs/commit",
        single_on.commits_per_sec(),
        single_on.fsyncs_per_commit()
    );
    println!(
        "{writers} writers       group on : {:8.0} commits/s   {:.3} fsyncs/commit",
        multi_on.commits_per_sec(),
        multi_on.fsyncs_per_commit()
    );
    println!(
        "single writer   group off: {:8.0} commits/s   {:.3} fsyncs/commit",
        single_off.commits_per_sec(),
        single_off.fsyncs_per_commit()
    );
    println!(
        "{writers} writers       group off: {:8.0} commits/s   {:.3} fsyncs/commit",
        multi_off.commits_per_sec(),
        multi_off.fsyncs_per_commit()
    );
    println!(
        "BEGIN..COMMIT x10 group on : {:8.0} rows/s      {:.3} fsyncs/commit   {} markers for {} txns",
        (batched.txn_commits * 10) as f64 / batched.seconds.max(1e-9),
        batched.fsyncs_per_commit(),
        batched.commits,
        batched.txn_commits
    );

    // Deterministic gates.
    if multi_on.fsyncs_per_commit() >= 1.0 {
        eprintln!(
            "ERROR: group commit must batch concurrent committers below one fsync per commit ({} fsyncs for {} commits)",
            multi_on.fsyncs, multi_on.commits
        );
        ok = false;
    }
    if multi_off.fsyncs_per_commit() < 1.0 {
        eprintln!(
            "ERROR: with group commit off every commit must pay its own fsync ({} fsyncs for {} commits)",
            multi_off.fsyncs, multi_off.commits
        );
        ok = false;
    }
    if batched.commits != batched.txn_commits {
        eprintln!(
            "ERROR: a BEGIN..COMMIT transaction must append exactly one WAL commit marker ({} markers for {} transactions)",
            batched.commits, batched.txn_commits
        );
        ok = false;
    }
    if multi_on.txn_commits != (writers * commits) as u64 {
        eprintln!(
            "ERROR: expected {} committed transactions on the concurrent group-on leg, saw {}",
            writers * commits,
            multi_on.txn_commits
        );
        ok = false;
    }
    let count_on = items_count(&dep_on.server);
    let count_off = items_count(&dep_off.server);
    if count_on != expected_on || count_off != expected_off {
        eprintln!(
            "ERROR: scratch-table counts diverge from the committed workload (group on {count_on} vs {expected_on}, group off {count_off} vs {expected_off})"
        );
        ok = false;
    }

    eprintln!("running the 22-query gate after the workload ...");
    let identical_post_on = check(&reference, &fingerprint(&dep_on.server), "group-on (post)");
    let identical_post_off = check(
        &reference,
        &fingerprint(&dep_off.server),
        "group-off (post)",
    );
    ok &= identical_post_on && identical_post_off;

    // Recovery: every committed row must survive a drop-and-replay cycle,
    // and the recovered deployments must still answer all 22 queries
    // identically.
    eprintln!("recovering both deployments from their logs ...");
    drop(dep_on);
    drop(dep_off);
    let rec_on =
        loader::reopen_durable(EngineConfig::postgres_like(), &wal_on).expect("recover group-on");
    let rec_off = loader::reopen_durable(
        EngineConfig::postgres_like().without_group_commit(),
        &wal_off,
    )
    .expect("recover group-off");
    let recovered_counts_ok =
        items_count(&rec_on) == expected_on && items_count(&rec_off) == expected_off;
    if !recovered_counts_ok {
        eprintln!("ERROR: committed rows were lost across recovery");
        ok = false;
    }
    let identical_recovered = check(&reference, &fingerprint(&rec_on), "recovered group-on")
        && check(&reference, &fingerprint(&rec_off), "recovered group-off");
    ok &= identical_recovered;

    let speedup = multi_on.commits_per_sec() / multi_off.commits_per_sec().max(1e-9);
    println!("group-commit speedup with {writers} writers: {speedup:.2}x");

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(
        json,
        "  \"benchmark\": \"multi-statement transactions and group commit (PR 10)\","
    )
    .unwrap();
    writeln!(
        json,
        "  \"config\": {{\"scale\": {scale}, \"tenants\": {TENANTS}, \"writers\": {writers}, \"commits_per_writer\": {commits}, \"runs\": {runs}}},"
    )
    .unwrap();
    for (key, leg) in [
        ("single_writer_group_on", &single_on),
        ("concurrent_group_on", &multi_on),
        ("single_writer_group_off", &single_off),
        ("concurrent_group_off", &multi_off),
        ("batched_txns_group_on", &batched),
    ] {
        writeln!(
            json,
            "  \"{key}\": {{\"seconds\": {:.6}, \"wal_commits\": {}, \"wal_fsyncs\": {}, \"txn_commits\": {}, \"fsyncs_per_commit\": {:.4}, \"commits_per_sec\": {:.0}}},",
            leg.seconds,
            leg.commits,
            leg.fsyncs,
            leg.txn_commits,
            leg.fsyncs_per_commit(),
            leg.commits_per_sec()
        )
        .unwrap();
    }
    writeln!(json, "  \"group_commit_speedup\": {speedup:.3},").unwrap();
    writeln!(
        json,
        "  \"identical_results\": {{\"queries_checked\": {}, \"post_workload\": {}, \"recovered\": {identical_recovered}}},",
        queries::QUERY_COUNT,
        identical_post_on && identical_post_off
    )
    .unwrap();
    writeln!(json, "  \"recovered_counts_ok\": {recovered_counts_ok}").unwrap();
    writeln!(json, "}}").unwrap();

    // The wall-clock bound is host-dependent and therefore skippable (`0`,
    // the CI setting).
    if min_speedup > 0.0 && speedup < min_speedup {
        eprintln!(
            "ERROR: group-commit concurrent throughput is {speedup:.2}x of the no-group baseline, below the allowed {min_speedup:.2}x"
        );
        ok = false;
    }

    std::fs::write(&out_path, json).expect("write results file");
    let _ = std::fs::remove_file(&wal_on);
    let _ = std::fs::remove_file(&wal_off);
    eprintln!("wrote {out_path}");
    if !ok {
        std::process::exit(1);
    }
}

//! Benchmark for the physical-plan layer's parallel partition scans (PR 2):
//! compare scan wall-clock with `parallel_scan` at 1 thread versus N threads
//! on the same generated data.
//!
//! Runs Q1, Q6 and Q22 at the o2 level with scope `D = {1..10}` (all
//! tenants, so every partition bucket is a parallel work unit) on a
//! 10-tenant deployment, once serial and once with the configured worker
//! budget, and writes wall-clock plus scan-counter results to
//! `BENCH_pr2.json`. Results must be identical between the two runs; Q6 —
//! whose scan filter compiles entirely to fast predicates and dominates its
//! runtime — is where the fan-out pays off.
//!
//! The speedup floor (`--min-speedup`, default 1.5) is only *enforced* when
//! the host exposes at least two CPUs — on a single-vCPU container threads
//! cannot run concurrently and the bench reports the (≈1.0×) numbers with a
//! warning instead of failing. The emitted JSON records `host_cpus` so
//! readers can tell the two situations apart.
//!
//! ```text
//! cargo run --release -p bench --bin pr2_parallel                 # scale 24, 4 threads
//! cargo run --release -p bench --bin pr2_parallel -- --scale 2.0 --runs 1 --min-speedup 0
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use mtbase::EngineConfig;
use mth::params::{MthConfig, TenantDistribution};
use mth::{gen, loader, queries, MthDeployment};
use mtrewrite::OptLevel;

const TENANTS: i64 = 10;
const QUERIES: [usize; 3] = [1, 6, 22];

struct Cell {
    seconds: f64,
    rows_scanned: u64,
    parallel_scans: u64,
    result: mtbase::ResultSet,
}

fn measure(dep: &MthDeployment, query: usize, runs: usize) -> Cell {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    let ids: Vec<String> = (1..=TENANTS).map(|t| t.to_string()).collect();
    conn.execute(&format!("SET SCOPE = \"IN ({})\"", ids.join(", ")))
        .expect("scope");
    let sql = queries::query(query);
    let mut best = f64::INFINITY;
    let mut stats = conn.last_query_stats();
    let mut result = mtbase::ResultSet::default();
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let rs = conn.query(&sql).unwrap_or_else(|e| panic!("Q{query}: {e}"));
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
        }
        stats = conn.last_query_stats();
        result = rs;
    }
    Cell {
        seconds: best,
        rows_scanned: stats.rows_scanned,
        parallel_scans: stats.parallel_scans,
        result,
    }
}

fn cell_json(cell: &Cell) -> String {
    format!(
        "{{\"seconds\": {:.6}, \"rows_scanned\": {}, \"parallel_scans\": {}, \"result_rows\": {}}}",
        cell.seconds,
        cell.rows_scanned,
        cell.parallel_scans,
        cell.result.rows.len()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 24.0_f64;
    let mut runs = 3usize;
    let mut threads = 4usize;
    let mut min_speedup = 1.5_f64;
    let mut out_path = "BENCH_pr2.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale expects a number");
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs expects a count");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads expects a count");
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = args[i].parse().expect("--min-speedup expects a number");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: pr2_parallel [--scale F] [--runs N] [--threads N] [--min-speedup F] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = MthConfig {
        scale,
        tenants: TENANTS,
        distribution: TenantDistribution::Uniform,
        seed: 42,
    };
    eprintln!("generating MT-H data (scale {scale}, {TENANTS} tenants, {host_cpus} host CPUs) ...");
    let data = gen::generate(&config);
    let dep_serial = loader::load_from_data(config, EngineConfig::postgres_like(), &data);
    let dep_parallel = loader::load_from_data(
        config,
        EngineConfig::postgres_like().with_parallel_scan(threads),
        &data,
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(
        json,
        "  \"benchmark\": \"parallel partition scans in the physical-plan layer (PR 2)\","
    )
    .unwrap();
    writeln!(
        json,
        "  \"config\": {{\"scale\": {scale}, \"tenants\": {TENANTS}, \"scope\": \"IN (1..{TENANTS})\", \"level\": \"o2\", \"threads\": {threads}, \"runs\": {runs}, \"host_cpus\": {host_cpus}}},"
    )
    .unwrap();
    writeln!(json, "  \"queries\": [").unwrap();

    let mut ok = true;
    let mut best_speedup = 0.0_f64;
    let mut engaged = false;
    for (qi, &query) in QUERIES.iter().enumerate() {
        eprintln!("measuring Q{query} ...");
        let serial = measure(&dep_serial, query, runs);
        let parallel = measure(&dep_parallel, query, runs);
        let speedup = serial.seconds / parallel.seconds.max(1e-9);
        best_speedup = best_speedup.max(speedup);
        println!(
            "Q{query:<2}  1 thread {:>9.6}s   {threads} threads {:>9.6}s   speedup {speedup:.2}x   ({} parallel scans, {} rows scanned)",
            serial.seconds, parallel.seconds, parallel.parallel_scans, parallel.rows_scanned
        );
        engaged |= parallel.parallel_scans > 0;
        if serial.result != parallel.result {
            eprintln!("ERROR: Q{query} results differ between serial and parallel scans");
            ok = false;
        }
        if serial.parallel_scans > 0 {
            eprintln!("ERROR: Q{query} serial configuration reported parallel scans");
            ok = false;
        }
        if serial.rows_scanned != parallel.rows_scanned {
            eprintln!("ERROR: Q{query} scan counters differ between serial and parallel scans");
            ok = false;
        }
        writeln!(
            json,
            "    {{\"query\": {query}, \"serial\": {}, \"parallel\": {}, \"speedup\": {speedup:.3}, \"identical_results\": {}}}{}",
            cell_json(&serial),
            cell_json(&parallel),
            serial.result == parallel.result,
            if qi + 1 == QUERIES.len() { "" } else { "," }
        )
        .unwrap();
    }
    // The deterministic gate: the fan-out must actually engage (and only in
    // the parallel configuration). The wall-clock gate below is inherently
    // host-dependent.
    if threads > 1 && !engaged {
        eprintln!("ERROR: no query engaged the parallel scan path at {threads} threads");
        ok = false;
    }
    if best_speedup < min_speedup {
        if host_cpus >= 2 {
            eprintln!(
                "ERROR: best parallel speedup {best_speedup:.2}x is below the required {min_speedup:.2}x"
            );
            ok = false;
        } else {
            eprintln!(
                "WARNING: best parallel speedup {best_speedup:.2}x below {min_speedup:.2}x, but the \
                 host has a single CPU — threads cannot run concurrently; not failing"
            );
        }
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"best_speedup\": {best_speedup:.3}").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, json).expect("write results file");
    eprintln!("wrote {out_path}");
    if !ok {
        std::process::exit(1);
    }
}

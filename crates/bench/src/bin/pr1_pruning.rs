//! Benchmark for the tenant-partitioned storage layer (PR 1): compare
//! scan-time partition pruning against the unpartitioned full-scan baseline
//! on the conversion-heavy MT-H queries.
//!
//! Runs Q1, Q6 and Q22 at the o4 level with scope `D = {1}` on a 10-tenant
//! deployment, once with pruning enabled and once disabled (same generated
//! data), and writes wall-clock plus scan-counter results to
//! `BENCH_pr1.json`.
//!
//! ```text
//! cargo run --release -p bench --bin pr1_pruning            # default scale 0.15
//! cargo run --release -p bench --bin pr1_pruning -- --scale 0.3 --runs 5
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use mtbase::EngineConfig;
use mth::params::{MthConfig, TenantDistribution};
use mth::{gen, loader, queries, MthDeployment};
use mtrewrite::OptLevel;

const TENANTS: i64 = 10;
const QUERIES: [usize; 3] = [1, 6, 22];

struct Cell {
    seconds: f64,
    rows_scanned: u64,
    partitions_scanned: u64,
    partitions_pruned: u64,
    result_rows: usize,
}

fn measure(dep: &MthDeployment, query: usize, runs: usize) -> Cell {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(OptLevel::O4);
    conn.execute("SET SCOPE = \"IN (1)\"").expect("scope");
    let sql = queries::query(query);
    let mut best = f64::INFINITY;
    let mut stats = conn.last_query_stats();
    let mut result_rows = 0;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let rs = conn.query(&sql).unwrap_or_else(|e| panic!("Q{query}: {e}"));
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
        }
        stats = conn.last_query_stats();
        result_rows = rs.rows.len();
    }
    Cell {
        seconds: best,
        rows_scanned: stats.rows_scanned,
        partitions_scanned: stats.partitions_scanned,
        partitions_pruned: stats.partitions_pruned,
        result_rows,
    }
}

fn cell_json(cell: &Cell) -> String {
    format!(
        "{{\"seconds\": {:.6}, \"rows_scanned\": {}, \"partitions_scanned\": {}, \"partitions_pruned\": {}, \"result_rows\": {}}}",
        cell.seconds, cell.rows_scanned, cell.partitions_scanned, cell.partitions_pruned, cell.result_rows
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.15;
    let mut runs = 3usize;
    let mut out_path = "BENCH_pr1.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale expects a number");
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs expects a count");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: pr1_pruning [--scale F] [--runs N] [--out FILE]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let config = MthConfig {
        scale,
        tenants: TENANTS,
        distribution: TenantDistribution::Uniform,
        seed: 42,
    };
    eprintln!("generating MT-H data (scale {scale}, {TENANTS} tenants) ...");
    let data = gen::generate(&config);
    let dep_pruned = loader::load_from_data(config, EngineConfig::postgres_like(), &data);
    let dep_full = loader::load_from_data(
        config,
        EngineConfig::postgres_like().without_partition_pruning(),
        &data,
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(
        json,
        "  \"benchmark\": \"tenant-partitioned storage with scan-time pruning (PR 1)\","
    )
    .unwrap();
    writeln!(
        json,
        "  \"config\": {{\"scale\": {scale}, \"tenants\": {TENANTS}, \"scope\": \"IN (1)\", \"level\": \"o4\", \"runs\": {runs}}},"
    )
    .unwrap();
    writeln!(json, "  \"queries\": [").unwrap();

    let mut ok = true;
    for (qi, &query) in QUERIES.iter().enumerate() {
        eprintln!("measuring Q{query} ...");
        let pruned = measure(&dep_pruned, query, runs);
        let full = measure(&dep_full, query, runs);
        let speedup = full.seconds / pruned.seconds.max(1e-9);
        let scan_reduction = full.rows_scanned as f64 / pruned.rows_scanned.max(1) as f64;
        println!(
            "Q{query:<2}  pruned {:>9.6}s ({} rows)   full {:>9.6}s ({} rows)   speedup {speedup:.2}x   scan reduction {scan_reduction:.1}x",
            pruned.seconds, pruned.rows_scanned, full.seconds, full.rows_scanned
        );
        if pruned.result_rows != full.result_rows {
            eprintln!("ERROR: Q{query} result cardinality differs with pruning on/off");
            ok = false;
        }
        if pruned.rows_scanned * 5 > full.rows_scanned {
            eprintln!("ERROR: Q{query} scan reduction below the expected 5x");
            ok = false;
        }
        writeln!(
            json,
            "    {{\"query\": {query}, \"pruned\": {}, \"full_scan\": {}, \"speedup\": {speedup:.3}, \"scan_reduction\": {scan_reduction:.2}}}{}",
            cell_json(&pruned),
            cell_json(&full),
            if qi + 1 == QUERIES.len() { "" } else { "," }
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, json).expect("write results file");
    eprintln!("wrote {out_path}");
    if !ok {
        std::process::exit(1);
    }
}

//! Regenerate the response-time tables of the MTBase paper (Tables 3–5 on the
//! PostgreSQL-like engine, Tables 7–9 on the System-C-like engine).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin tables            # all six tables, all 22 queries
//! cargo run --release -p bench --bin tables -- --table 3
//! cargo run --release -p bench --bin tables -- --table 5 --queries 1,6,22
//! ```

use bench::{render_table, run_table, TABLES};
use mth::queries;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted_tables: Vec<u8> = TABLES.iter().map(|t| t.number).collect();
    let mut query_numbers: Vec<usize> = queries::all_query_numbers().collect();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--table" => {
                i += 1;
                let n: u8 = args[i].parse().expect("--table expects a table number");
                wanted_tables = vec![n];
            }
            "--queries" => {
                i += 1;
                query_numbers = args[i]
                    .split(',')
                    .map(|q| q.trim().parse().expect("--queries expects numbers"))
                    .collect();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: tables [--table N] [--queries 1,6,22]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    for spec in TABLES {
        if !wanted_tables.contains(&spec.number) {
            continue;
        }
        eprintln!("running table {} ...", spec.number);
        match run_table(spec, &query_numbers) {
            Ok(result) => println!("{}", render_table(&result, &query_numbers)),
            Err(e) => {
                eprintln!("table {} failed: {e}", spec.number);
                std::process::exit(1);
            }
        }
    }
}

//! Benchmark for the session API v2 (PR 4): prepared statements with plan
//! caching, and streaming cursors.
//!
//! Two measurements, written to `BENCH_pr4.json`:
//!
//! 1. **Prepared re-execute vs one-shot vs cold.** Q1, Q6 and Q22 are
//!    executed `--iters` times per client C ∈ {1, 2} (the full 10-tenant
//!    scope) through three front-ends: *cold* (the plan cache is cleared
//!    before every call, so each execution pays the full parse, scope
//!    resolution, rewrite and planning cost — the pre-PR-4 behaviour),
//!    *one-shot* (`Connection::query`, which shares the plan cache, so
//!    this column measures the remaining per-call cost of parsing,
//!    normalizing, D' resolution and the key lookup), and *prepared*
//!    (`prepare` once, `execute` per call). A parameterized Q6 re-binds a
//!    different `l_quantity` bound per iteration to show that rebinding
//!    never replans.
//! 2. **Cursor vs materialized peak residency.** A pipeline-able lineitem
//!    scan is drained through a `Cursor` (batch 1024) and compared to the
//!    fully materialized `execute` result.
//!
//! Deterministic gates (always enforced, CI runs them):
//!
//! * prepared results are byte-identical to one-shot results;
//! * the plan cache actually engages: every re-execution after the first is
//!   a `prepared_cache_hits` increment, zero further misses;
//! * the parameterized statement returns the same rows as the one-shot with
//!   the value inlined as a literal, for every binding;
//! * the cursor streams (`is_streaming`), returns exactly the materialized
//!   rows, and its peak resident row count never exceeds the batch size.
//!
//! Wall-clock speedups are reported, not gated (host-dependent).
//!
//! ```text
//! cargo run --release -p bench --bin pr4_prepared                 # scale 2, 20 iters
//! cargo run --release -p bench --bin pr4_prepared -- --scale 0.2 --iters 5
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use mtbase::{EngineConfig, Value};
use mth::params::{MthConfig, TenantDistribution};
use mth::{gen, loader, queries, MthDeployment};
use mtrewrite::OptLevel;

const TENANTS: i64 = 10;
const QUERIES: [usize; 3] = [1, 6, 22];
const CLIENTS: [i64; 2] = [1, 2];
const CURSOR_BATCH: usize = 1024;

fn scope_sql() -> String {
    let ids: Vec<String> = (1..=TENANTS).map(|t| t.to_string()).collect();
    format!("SET SCOPE = \"IN ({})\"", ids.join(", "))
}

struct PreparedCell {
    uncached_seconds: f64,
    one_shot_seconds: f64,
    prepared_seconds: f64,
    cache_hits: u64,
    cache_misses: u64,
    result_rows: usize,
    identical: bool,
}

/// Measure one (query, client) cell: `iters` executions of the same SQL
/// through three front-ends — cold (plan cache cleared before every call:
/// the full per-statement parse + rewrite + plan cost this PR amortizes),
/// one-shot (`Connection::query`, which shares the plan cache), and
/// prepared (`prepare` once, `execute` per call) — gating on identical
/// results and on cache-hit engagement for the prepared run.
fn measure_prepared(dep: &MthDeployment, client: i64, query: usize, iters: usize) -> PreparedCell {
    let sql = queries::query(query);
    let mut conn = dep.server.connect(client);
    conn.set_opt_level(OptLevel::O2);
    conn.execute(&scope_sql()).expect("scope");

    // Cold front-end loop: every call re-parses, re-resolves, re-rewrites
    // and re-plans — the pre-PR-4 per-statement cost.
    let mut uncached = mtbase::ResultSet::default();
    let start = Instant::now();
    for _ in 0..iters {
        dep.server.clear_plan_cache();
        uncached = conn.query(&sql).unwrap_or_else(|e| panic!("Q{query}: {e}"));
    }
    let uncached_seconds = start.elapsed().as_secs_f64();

    // One-shot loop (parse + D' + cache lookup per call).
    let mut one_shot = mtbase::ResultSet::default();
    let start = Instant::now();
    for _ in 0..iters {
        one_shot = conn.query(&sql).unwrap_or_else(|e| panic!("Q{query}: {e}"));
    }
    let one_shot_seconds = start.elapsed().as_secs_f64();
    assert_eq!(uncached, one_shot, "Q{query}: cache changed the result");

    // Prepared loop (parse once; front-end from the plan cache).
    let mut stmt = conn.prepare(&sql).expect("prepare");
    let before = dep.server.stats();
    let mut prepared = mtbase::ResultSet::default();
    let start = Instant::now();
    for _ in 0..iters {
        prepared = stmt.execute().unwrap_or_else(|e| panic!("Q{query}: {e}"));
    }
    let prepared_seconds = start.elapsed().as_secs_f64();
    let delta = dep.server.stats().delta_from(&before);

    PreparedCell {
        uncached_seconds,
        one_shot_seconds,
        prepared_seconds,
        cache_hits: delta.prepared_cache_hits,
        cache_misses: delta.prepared_cache_misses,
        result_rows: prepared.rows.len(),
        identical: prepared == one_shot,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 2.0_f64;
    let mut iters = 20usize;
    let mut out_path = "BENCH_pr4.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale expects a number");
            }
            "--iters" => {
                i += 1;
                iters = args[i]
                    .parse::<usize>()
                    .expect("--iters expects a count")
                    .max(2);
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: pr4_prepared [--scale F] [--iters N] [--out FILE]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let config = MthConfig {
        scale,
        tenants: TENANTS,
        distribution: TenantDistribution::Uniform,
        seed: 42,
    };
    eprintln!("generating MT-H data (scale {scale}, {TENANTS} tenants) ...");
    let data = gen::generate(&config);
    let dep = loader::load_from_data(config, EngineConfig::postgres_like(), &data);
    // The loader grants read-all only to the default benchmark client.
    for c in CLIENTS {
        dep.server.grant_read_all(c).expect("grant read");
    }

    let mut ok = true;
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(
        json,
        "  \"benchmark\": \"prepared statements with plan caching and streaming cursors (PR 4)\","
    )
    .unwrap();
    writeln!(
        json,
        "  \"config\": {{\"scale\": {scale}, \"tenants\": {TENANTS}, \"scope\": \"IN (1..{TENANTS})\", \"level\": \"o2\", \"iters\": {iters}, \"clients\": [1, 2]}},"
    )
    .unwrap();

    // ------------------------------------------------------------------
    // 1. Prepared re-execute vs one-shot, per query × client.
    // ------------------------------------------------------------------
    writeln!(json, "  \"prepared\": [").unwrap();
    let mut cells: Vec<String> = Vec::new();
    for &query in &QUERIES {
        for &client in &CLIENTS {
            eprintln!("measuring Q{query} as client {client} ...");
            let cell = measure_prepared(&dep, client, query, iters);
            let speedup = cell.one_shot_seconds / cell.prepared_seconds.max(1e-9);
            let amortized = cell.uncached_seconds / cell.prepared_seconds.max(1e-9);
            println!(
                "Q{query:<2} C={client}  cold {:>9.6}s   one-shot {:>9.6}s   prepared {:>9.6}s   amortized {amortized:.2}x   hits {}/{} executions",
                cell.uncached_seconds, cell.one_shot_seconds, cell.prepared_seconds, cell.cache_hits, iters
            );
            if !cell.identical {
                eprintln!("ERROR: Q{query} C={client} prepared result differs from one-shot");
                ok = false;
            }
            if cell.cache_hits < (iters as u64 - 1) || cell.cache_misses > 1 {
                eprintln!(
                    "ERROR: Q{query} C={client} plan cache did not engage (hits {}, misses {})",
                    cell.cache_hits, cell.cache_misses
                );
                ok = false;
            }
            cells.push(format!(
                "    {{\"query\": {query}, \"client\": {client}, \"uncached_seconds\": {:.6}, \"one_shot_seconds\": {:.6}, \"prepared_seconds\": {:.6}, \"speedup_vs_one_shot\": {speedup:.3}, \"speedup_vs_uncached\": {amortized:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \"result_rows\": {}, \"identical_results\": {}}}",
                cell.uncached_seconds,
                cell.one_shot_seconds,
                cell.prepared_seconds,
                cell.cache_hits,
                cell.cache_misses,
                cell.result_rows,
                cell.identical
            ));
        }
    }
    writeln!(json, "{}", cells.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();

    // ------------------------------------------------------------------
    // 2. Parameterized Q6: rebind per iteration, never replan.
    // ------------------------------------------------------------------
    {
        eprintln!("measuring parameterized Q6 rebinds ...");
        let template = "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
             WHERE l_shipdate >= DATE '1994-01-01' \
             AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR \
             AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < ?";
        let mut conn = dep.server.connect(1);
        conn.set_opt_level(OptLevel::O2);
        conn.execute(&scope_sql()).expect("scope");
        let mut stmt = conn.prepare(template).expect("prepare Q6 template");
        let bounds = [11i64, 24, 35, 48];
        let before = dep.server.stats();
        let mut identical = true;
        for (i, &bound) in bounds.iter().cycle().take(iters).enumerate() {
            let prepared = stmt
                .execute_with(&[Value::Int(bound)])
                .expect("parameterized Q6");
            if i < bounds.len() {
                let inlined = conn
                    .query(&template.replace('?', &bound.to_string()))
                    .expect("inlined Q6");
                identical &= prepared == inlined;
            }
        }
        let delta = dep.server.stats().delta_from(&before);
        // First execution plans; every rebind after it must hit. The
        // interleaved one-shot checks add their own lookups, so gate the
        // prepared misses only.
        let rebind_ok = delta.prepared_cache_misses <= 1 + bounds.len() as u64;
        if !identical {
            eprintln!("ERROR: parameterized Q6 differs from inlined literals");
            ok = false;
        }
        if !rebind_ok {
            eprintln!(
                "ERROR: rebinding replanned (misses {})",
                delta.prepared_cache_misses
            );
            ok = false;
        }
        println!(
            "Q6 rebind x{iters}: cache hits {}, misses {} (inlined-literal results identical: {identical})",
            delta.prepared_cache_hits, delta.prepared_cache_misses
        );
        writeln!(
            json,
            "  \"rebind_q6\": {{\"iters\": {iters}, \"cache_hits\": {}, \"cache_misses\": {}, \"identical_results\": {identical}}},",
            delta.prepared_cache_hits, delta.prepared_cache_misses
        )
        .unwrap();
    }

    // ------------------------------------------------------------------
    // 3. Cursor streaming vs materialized execution.
    // ------------------------------------------------------------------
    {
        eprintln!("measuring cursor residency ...");
        let sql = "SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity < 30";
        let mut conn = dep.server.connect(1);
        conn.set_opt_level(OptLevel::O2);
        conn.execute(&scope_sql()).expect("scope");
        let mut stmt = conn.prepare(sql).expect("prepare scan");

        let start = Instant::now();
        let materialized = stmt.execute().expect("materialized scan");
        let materialized_seconds = start.elapsed().as_secs_f64();

        let mut cursor = stmt.cursor_with_batch(CURSOR_BATCH).expect("cursor");
        let start = Instant::now();
        let mut streamed_rows = 0usize;
        let mut identical = true;
        let mut offset = 0usize;
        while let Some(batch) = cursor.next_batch().expect("fetch") {
            identical &= materialized.rows[offset..offset + batch.len()] == batch[..];
            offset += batch.len();
            streamed_rows += batch.len();
        }
        let cursor_seconds = start.elapsed().as_secs_f64();
        identical &= streamed_rows == materialized.rows.len();

        let streaming = cursor.is_streaming();
        let peak = cursor.peak_resident_rows();
        if !identical {
            eprintln!("ERROR: cursor rows differ from materialized execution");
            ok = false;
        }
        if !streaming {
            eprintln!("ERROR: pipeline-able scan did not stream");
            ok = false;
        }
        if peak > CURSOR_BATCH {
            eprintln!("ERROR: cursor held {peak} rows resident (batch {CURSOR_BATCH})");
            ok = false;
        }
        let reduction = materialized.rows.len() as f64 / peak.max(1) as f64;
        println!(
            "cursor: {} result rows, peak resident {} ({}x fewer than materialized), streamed in {:.6}s vs {:.6}s materialized",
            materialized.rows.len(),
            peak,
            reduction as u64,
            cursor_seconds,
            materialized_seconds
        );
        writeln!(
            json,
            "  \"cursor\": {{\"query\": \"{sql}\", \"batch_rows\": {CURSOR_BATCH}, \"result_rows\": {}, \"peak_resident_rows\": {peak}, \"residency_reduction\": {reduction:.1}, \"materialized_seconds\": {materialized_seconds:.6}, \"cursor_seconds\": {cursor_seconds:.6}, \"streaming\": {streaming}, \"identical_results\": {identical}}}",
            materialized.rows.len()
        )
        .unwrap();
    }

    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, json).expect("write results file");
    eprintln!("wrote {out_path}");
    if !ok {
        std::process::exit(1);
    }
}

//! Regenerate the tenant-scaling figures of the MTBase paper (Figure 5 on the
//! PostgreSQL-like engine, Figure 6 on the System-C-like engine): response
//! time of Q1, Q6 and Q22 relative to plain TPC-H for a growing number of
//! tenants, at optimization levels o4 and inl-only.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin figures                 # both figures
//! cargo run --release -p bench --bin figures -- --figure 5
//! cargo run --release -p bench --bin figures -- --tenants 1,10,100,1000
//! ```

use bench::{render_figure, run_figure};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figures = vec![5u8, 6u8];
    // The paper sweeps 1 … 100,000 tenants at sf = 100; the laptop-scale sweep
    // keeps the shape (flat overhead) on a smaller grid by default.
    let mut tenant_counts: Vec<i64> = vec![1, 10, 100, 1000];
    let mut scale = 0.15;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--figure" => {
                i += 1;
                figures = vec![args[i].parse().expect("--figure expects 5 or 6")];
            }
            "--tenants" => {
                i += 1;
                tenant_counts = args[i]
                    .split(',')
                    .map(|t| t.trim().parse().expect("--tenants expects numbers"))
                    .collect();
            }
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale expects a float");
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: figures [--figure 5|6] [--tenants 1,10,100] [--scale 0.15]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    for figure in figures {
        let postgres_like = figure == 5;
        eprintln!("running figure {figure} (tenants: {tenant_counts:?}) ...");
        match run_figure(&tenant_counts, postgres_like, scale) {
            Ok(points) => println!("{}", render_figure(&points, figure)),
            Err(e) => {
                eprintln!("figure {figure} failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

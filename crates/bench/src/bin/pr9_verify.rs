//! Benchmark for the static plan verifier (PR 9): run the full 22-query
//! MT-H sweep twice on the same generated data — once with
//! `EngineConfig::with_verify_plans()` and once with verification off — and
//! write wall-clock plus the `plans_verified` counter to `BENCH_pr9.json`.
//!
//! The gates are deterministic and always enforced (CI runs them too):
//!
//! * results must be byte-identical between the verified and unverified
//!   runs on every query — the verifier is read-only over the plan DAG;
//! * every verified run must report `plans_verified > 0` and the
//!   unverified run must never report it (the engagement gate).
//!
//! The overhead ceiling (`--max-overhead-pct`) defaults to **0**, meaning
//! *disabled*, per the PR 2 convention — shared CI runners are too noisy
//! for timing asserts. On a quiet host `--max-overhead-pct 2` asserts the
//! verifier costs less than 2% of sweep wall-clock.
//!
//! ```text
//! cargo run --release -p bench --bin pr9_verify                 # scale 1, 3 runs
//! cargo run --release -p bench --bin pr9_verify -- --scale 0.5 --runs 1
//! cargo run --release -p bench --bin pr9_verify -- --max-overhead-pct 2
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use mtbase::EngineConfig;
use mth::params::{MthConfig, TenantDistribution};
use mth::{gen, loader, queries, MthDeployment};
use mtrewrite::OptLevel;

const TENANTS: i64 = 10;

struct Cell {
    seconds: f64,
    plans_verified: u64,
    result: mtbase::ResultSet,
}

fn measure(dep: &MthDeployment, query: usize, runs: usize) -> Cell {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    let ids: Vec<String> = (1..=TENANTS).map(|t| t.to_string()).collect();
    conn.execute(&format!("SET SCOPE = \"IN ({})\"", ids.join(", ")))
        .expect("scope");
    let sql = queries::query(query);
    let mut best = f64::INFINITY;
    let mut plans_verified = 0;
    let mut result = mtbase::ResultSet::default();
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let rs = conn.query(&sql).unwrap_or_else(|e| panic!("Q{query}: {e}"));
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
        }
        plans_verified = conn.last_query_stats().plans_verified;
        result = rs;
    }
    Cell {
        seconds: best,
        plans_verified,
        result,
    }
}

fn main() {
    // The engagement gate below asserts the *unverified* deployment never
    // verifies a plan, so an inherited MT_VERIFY override must not leak in.
    std::env::remove_var("MT_VERIFY");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0_f64;
    let mut runs = 3usize;
    let mut max_overhead_pct = 0.0_f64;
    let mut out_path = "BENCH_pr9.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale expects a number");
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs expects a count");
            }
            "--max-overhead-pct" => {
                i += 1;
                max_overhead_pct = args[i]
                    .parse()
                    .expect("--max-overhead-pct expects a number");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: pr9_verify [--scale F] [--runs N] [--max-overhead-pct F] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let config = MthConfig {
        scale,
        tenants: TENANTS,
        distribution: TenantDistribution::Uniform,
        seed: 42,
    };
    eprintln!("generating MT-H data (scale {scale}, {TENANTS} tenants) ...");
    let data = gen::generate(&config);
    let dep_verified = loader::load_from_data(
        config,
        EngineConfig::postgres_like().with_verify_plans(),
        &data,
    );
    let dep_plain = loader::load_from_data(config, EngineConfig::postgres_like(), &data);

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(
        json,
        "  \"benchmark\": \"static plan verification (PR 9)\","
    )
    .unwrap();
    writeln!(
        json,
        "  \"config\": {{\"scale\": {scale}, \"tenants\": {TENANTS}, \"scope\": \"IN (1..{TENANTS})\", \"level\": \"o2\", \"runs\": {runs}}},"
    )
    .unwrap();
    writeln!(json, "  \"cells\": [").unwrap();

    let mut ok = true;
    let mut total_verified = 0.0_f64;
    let mut total_plain = 0.0_f64;
    let query_numbers: Vec<usize> = queries::all_query_numbers().collect();
    for (n, &query) in query_numbers.iter().enumerate() {
        let plain = measure(&dep_plain, query, runs);
        let verified = measure(&dep_verified, query, runs);
        total_plain += plain.seconds;
        total_verified += verified.seconds;
        println!(
            "Q{query:<3} plain {:>9.6}s   verified {:>9.6}s   plans_verified {}",
            plain.seconds, verified.seconds, verified.plans_verified
        );
        if plain.result != verified.result {
            eprintln!("ERROR: Q{query}: results differ between verified and plain runs");
            ok = false;
        }
        if verified.plans_verified == 0 {
            eprintln!("ERROR: Q{query}: the verified run did not verify a plan");
            ok = false;
        }
        if plain.plans_verified != 0 {
            eprintln!("ERROR: Q{query}: the plain run reported verified plans");
            ok = false;
        }
        writeln!(
            json,
            "    {{\"query\": \"Q{query}\", \"plain_seconds\": {:.6}, \"verified_seconds\": {:.6}, \"plans_verified\": {}, \"identical_results\": {}}}{}",
            plain.seconds,
            verified.seconds,
            verified.plans_verified,
            plain.result == verified.result,
            if n + 1 == query_numbers.len() { "" } else { "," }
        )
        .unwrap();
    }
    let overhead_pct = (total_verified - total_plain) / total_plain.max(1e-9) * 100.0;
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"total_plain_seconds\": {total_plain:.6},").unwrap();
    writeln!(json, "  \"total_verified_seconds\": {total_verified:.6},").unwrap();
    writeln!(json, "  \"overhead_pct\": {overhead_pct:.3}").unwrap();
    writeln!(json, "}}").unwrap();

    println!(
        "sweep total: plain {total_plain:.3}s, verified {total_verified:.3}s, overhead {overhead_pct:+.2}%"
    );
    // The overhead ceiling depends on the host and defaults to disabled
    // (see module docs); result identity and engagement always gate.
    if max_overhead_pct > 0.0 && overhead_pct > max_overhead_pct {
        eprintln!(
            "ERROR: verifier overhead {overhead_pct:.2}% exceeds the allowed {max_overhead_pct:.2}%"
        );
        ok = false;
    }

    std::fs::write(&out_path, json).expect("write results file");
    eprintln!("wrote {out_path}");
    if !ok {
        std::process::exit(1);
    }
}

//! Benchmark for the columnar bucket storage (PR 3): compare scans over
//! columnar buckets (vectorized predicate kernels + late materialization)
//! against the row-bucket baseline on the same generated data.
//!
//! Runs Q1, Q6 and Q22 at the o2 level with scope `D = {1..10}` (all
//! tenants) on a 10-tenant deployment, once with
//! `EngineConfig::columnar_scan` (the default) and once on the row layout
//! (`without_columnar_scan`), and writes wall-clock plus scan-counter
//! results to `BENCH_pr3.json`.
//!
//! The gates are deterministic and always enforced (CI runs them too):
//!
//! * results must be byte-identical between the two layouts;
//! * the columnar run must actually engage the vectorized path
//!   (`rows_vectorized > 0`) on every query, and the row run must never
//!   report it;
//! * both runs must visit the same number of rows (`rows_scanned`).
//!
//! The headline metric is the **rows-materialized reduction**: columnar
//! scans touch only the predicate columns and build full rows for the
//! qualifying row ids alone (`late_materialized`), so
//! `rows_scanned / late_materialized` is the fraction of row constructions
//! the layout avoids. Wall-clock speedup is reported but not gated (it is
//! host-dependent).
//!
//! ```text
//! cargo run --release -p bench --bin pr3_columnar                # scale 8, 3 runs
//! cargo run --release -p bench --bin pr3_columnar -- --scale 1.0 --runs 1
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use mtbase::EngineConfig;
use mth::params::{MthConfig, TenantDistribution};
use mth::{gen, loader, queries, MthDeployment};
use mtrewrite::OptLevel;

const TENANTS: i64 = 10;
const QUERIES: [usize; 3] = [1, 6, 22];

struct Cell {
    seconds: f64,
    rows_scanned: u64,
    rows_vectorized: u64,
    late_materialized: u64,
    result: mtbase::ResultSet,
}

fn measure(dep: &MthDeployment, query: usize, runs: usize) -> Cell {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    let ids: Vec<String> = (1..=TENANTS).map(|t| t.to_string()).collect();
    conn.execute(&format!("SET SCOPE = \"IN ({})\"", ids.join(", ")))
        .expect("scope");
    let sql = queries::query(query);
    let mut best = f64::INFINITY;
    let mut stats = conn.last_query_stats();
    let mut result = mtbase::ResultSet::default();
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let rs = conn.query(&sql).unwrap_or_else(|e| panic!("Q{query}: {e}"));
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
        }
        stats = conn.last_query_stats();
        result = rs;
    }
    Cell {
        seconds: best,
        rows_scanned: stats.rows_scanned,
        rows_vectorized: stats.rows_vectorized,
        late_materialized: stats.late_materialized,
        result,
    }
}

fn cell_json(cell: &Cell) -> String {
    format!(
        "{{\"seconds\": {:.6}, \"rows_scanned\": {}, \"rows_vectorized\": {}, \"late_materialized\": {}, \"result_rows\": {}}}",
        cell.seconds,
        cell.rows_scanned,
        cell.rows_vectorized,
        cell.late_materialized,
        cell.result.rows.len()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 8.0_f64;
    let mut runs = 3usize;
    let mut out_path = "BENCH_pr3.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale expects a number");
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs expects a count");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: pr3_columnar [--scale F] [--runs N] [--out FILE]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let config = MthConfig {
        scale,
        tenants: TENANTS,
        distribution: TenantDistribution::Uniform,
        seed: 42,
    };
    eprintln!("generating MT-H data (scale {scale}, {TENANTS} tenants) ...");
    let data = gen::generate(&config);
    let dep_row = loader::load_from_data(
        config,
        EngineConfig::postgres_like().without_columnar_scan(),
        &data,
    );
    let dep_columnar = loader::load_from_data(config, EngineConfig::postgres_like(), &data);

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(
        json,
        "  \"benchmark\": \"columnar bucket storage with vectorized predicate evaluation (PR 3)\","
    )
    .unwrap();
    writeln!(
        json,
        "  \"config\": {{\"scale\": {scale}, \"tenants\": {TENANTS}, \"scope\": \"IN (1..{TENANTS})\", \"level\": \"o2\", \"runs\": {runs}}},"
    )
    .unwrap();
    writeln!(json, "  \"queries\": [").unwrap();

    let mut ok = true;
    let mut best_reduction = 0.0_f64;
    for (qi, &query) in QUERIES.iter().enumerate() {
        eprintln!("measuring Q{query} ...");
        let row = measure(&dep_row, query, runs);
        let columnar = measure(&dep_columnar, query, runs);
        let speedup = row.seconds / columnar.seconds.max(1e-9);
        let reduction = columnar.rows_scanned as f64 / columnar.late_materialized.max(1) as f64;
        best_reduction = best_reduction.max(reduction);
        println!(
            "Q{query:<2}  row {:>9.6}s   columnar {:>9.6}s   speedup {speedup:.2}x   materialized {} of {} scanned rows ({reduction:.1}x fewer)",
            row.seconds, columnar.seconds, columnar.late_materialized, columnar.rows_scanned
        );
        if row.result != columnar.result {
            eprintln!("ERROR: Q{query} results differ between row and columnar scans");
            ok = false;
        }
        if columnar.rows_vectorized == 0 {
            eprintln!("ERROR: Q{query} did not engage the vectorized columnar path");
            ok = false;
        }
        if row.rows_vectorized != 0 {
            eprintln!("ERROR: Q{query} row-layout run reported vectorized rows");
            ok = false;
        }
        if row.rows_scanned != columnar.rows_scanned {
            eprintln!("ERROR: Q{query} scan counters differ between row and columnar scans");
            ok = false;
        }
        writeln!(
            json,
            "    {{\"query\": {query}, \"row\": {}, \"columnar\": {}, \"speedup\": {speedup:.3}, \"materialization_reduction\": {reduction:.3}, \"identical_results\": {}}}{}",
            cell_json(&row),
            cell_json(&columnar),
            row.result == columnar.result,
            if qi + 1 == QUERIES.len() { "" } else { "," }
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(
        json,
        "  \"best_materialization_reduction\": {best_reduction:.3}"
    )
    .unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, json).expect("write results file");
    eprintln!("wrote {out_path}");
    if !ok {
        std::process::exit(1);
    }
}

//! Shared harness code for regenerating every table and figure of the MTBase
//! paper's evaluation (§6) on the `mtengine` substrate.
//!
//! * Tables 3–5: MTBase-on-"PostgreSQL" (UDF-result caching enabled), sf = 1,
//!   T = 10, uniform shares, C = 1, D ∈ {{1}, {2}, {1..10}}, all optimization
//!   levels, versus plain TPC-H.
//! * Tables 7–9: the same grid on "System C" (no UDF-result caching).
//! * Figures 5–6: tenant scaling on the conversion-heavy queries Q1, Q6 and
//!   Q22 for the o4 and inl-only levels, relative to plain TPC-H.
//!
//! Absolute scale factors are shrunk to laptop size (see DESIGN.md); the
//! *relative* behaviour — which optimization level wins, by roughly what
//! factor, and how overhead develops with the number of tenants — is what the
//! harness reproduces.

use mtbase::EngineConfig;
use mth::measure::{measure_baseline, measure_mt, two_significant_digits, Measurement};
use mth::params::{MthConfig, TenantDistribution};
use mth::{loader, queries, MthDeployment};
use mtrewrite::OptLevel;

/// Which dataset `D` a table uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSpec {
    /// `D = {1}`: the client's own data (Tables 3 and 7).
    Own,
    /// `D = {2}`: one foreign tenant (Tables 4 and 8).
    SingleForeign,
    /// `D = {1, …, T}`: all tenants (Tables 5 and 9).
    All,
}

impl DatasetSpec {
    /// The scope statement selecting this dataset.
    pub fn scope_sql(&self, tenants: i64) -> String {
        match self {
            DatasetSpec::Own => "SET SCOPE = \"IN (1)\"".to_string(),
            DatasetSpec::SingleForeign => "SET SCOPE = \"IN (2)\"".to_string(),
            DatasetSpec::All => {
                let ids: Vec<String> = (1..=tenants).map(|t| t.to_string()).collect();
                format!("SET SCOPE = \"IN ({})\"", ids.join(", "))
            }
        }
    }

    /// Human-readable description used in harness output.
    pub fn describe(&self, tenants: i64) -> String {
        match self {
            DatasetSpec::Own => "D = {1}".to_string(),
            DatasetSpec::SingleForeign => "D = {2}".to_string(),
            DatasetSpec::All => format!("D = {{1..{tenants}}}"),
        }
    }
}

/// Description of one paper table.
#[derive(Debug, Clone, Copy)]
pub struct TableSpec {
    pub number: u8,
    pub postgres_like: bool,
    pub dataset: DatasetSpec,
}

/// The six response-time tables of the paper.
pub const TABLES: [TableSpec; 6] = [
    TableSpec {
        number: 3,
        postgres_like: true,
        dataset: DatasetSpec::Own,
    },
    TableSpec {
        number: 4,
        postgres_like: true,
        dataset: DatasetSpec::SingleForeign,
    },
    TableSpec {
        number: 5,
        postgres_like: true,
        dataset: DatasetSpec::All,
    },
    TableSpec {
        number: 7,
        postgres_like: false,
        dataset: DatasetSpec::Own,
    },
    TableSpec {
        number: 8,
        postgres_like: false,
        dataset: DatasetSpec::SingleForeign,
    },
    TableSpec {
        number: 9,
        postgres_like: false,
        dataset: DatasetSpec::All,
    },
];

/// Optimization levels in the row order of the paper's tables.
pub const LEVELS: [OptLevel; 6] = [
    OptLevel::Canonical,
    OptLevel::O1,
    OptLevel::O2,
    OptLevel::O3,
    OptLevel::O4,
    OptLevel::InlineOnly,
];

/// Default harness scale: shrunk from the paper's sf = 1 to in-memory size.
pub const TABLE_SCALE: f64 = 0.15;
/// Number of tenants for the table experiments (paper: T = 10).
pub const TABLE_TENANTS: i64 = 10;
/// Number of measured runs per cell (paper: 3, report the last).
pub const RUNS: usize = 2;

/// Build the deployment used for the table experiments.
pub fn table_deployment(postgres_like: bool) -> MthDeployment {
    let config = MthConfig {
        scale: TABLE_SCALE,
        tenants: TABLE_TENANTS,
        distribution: TenantDistribution::Uniform,
        seed: 42,
    };
    let engine = if postgres_like {
        EngineConfig::postgres_like()
    } else {
        EngineConfig::system_c_like()
    };
    loader::load(config, engine)
}

/// Build the deployment used for a tenant-scaling point of Figures 5/6.
pub fn scaling_deployment(tenants: i64, postgres_like: bool, scale: f64) -> MthDeployment {
    let config = MthConfig {
        scale,
        tenants,
        distribution: TenantDistribution::Zipf,
        seed: 42,
    };
    let engine = if postgres_like {
        EngineConfig::postgres_like()
    } else {
        EngineConfig::system_c_like()
    };
    loader::load(config, engine)
}

/// Measure one MT-H cell: query `q` at `level` over the given dataset.
pub fn measure_cell(
    dep: &MthDeployment,
    spec: DatasetSpec,
    query: usize,
    level: OptLevel,
    runs: usize,
) -> Result<Measurement, String> {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(level);
    conn.execute(&spec.scope_sql(dep.config.tenants))
        .map_err(|e| e.to_string())?;
    let sql = queries::query(query);
    let mut last = std::time::Duration::ZERO;
    let mut rows = 0;
    for _ in 0..runs.max(1) {
        dep.server.reset_stats();
        let start = std::time::Instant::now();
        let rs = conn
            .query(&sql)
            .map_err(|e| format!("Q{query} {level:?}: {e}"))?;
        last = start.elapsed();
        rows = rs.rows.len();
    }
    Ok(Measurement {
        query,
        level: Some(level),
        seconds: last.as_secs_f64(),
        rows,
    })
}

/// One fully-measured table: the TPC-H baseline row plus one row per level.
pub struct TableResult {
    pub spec: TableSpec,
    pub baseline: Vec<Measurement>,
    pub levels: Vec<(OptLevel, Vec<Measurement>)>,
}

/// Regenerate one of the paper's tables over the given queries.
pub fn run_table(spec: TableSpec, query_numbers: &[usize]) -> Result<TableResult, String> {
    let dep = table_deployment(spec.postgres_like);
    let baseline = query_numbers
        .iter()
        .map(|&q| measure_baseline(&dep, q, RUNS))
        .collect::<Result<Vec<_>, _>>()?;
    let mut levels = Vec::new();
    for level in LEVELS {
        let row = query_numbers
            .iter()
            .map(|&q| measure_cell(&dep, spec.dataset, q, level, RUNS))
            .collect::<Result<Vec<_>, _>>()?;
        levels.push((level, row));
    }
    Ok(TableResult {
        spec,
        baseline,
        levels,
    })
}

/// Render a [`TableResult`] in the style of the paper (seconds, two
/// significant digits).
pub fn render_table(result: &TableResult, query_numbers: &[usize]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table {}: MTBase-on-{} with sf-equivalent scale {}, T = {}, uniform, C = 1, {}\n",
        result.spec.number,
        if result.spec.postgres_like {
            "PostgreSQL-like engine (UDF cache on)"
        } else {
            "System-C-like engine (UDF cache off)"
        },
        TABLE_SCALE,
        TABLE_TENANTS,
        result.spec.dataset.describe(TABLE_TENANTS),
    ));
    out.push_str(&format!("{:<10}", "level"));
    for q in query_numbers {
        out.push_str(&format!("{:>8}", format!("Q{q:02}")));
    }
    out.push('\n');
    out.push_str(&format!("{:<10}", "tpch"));
    for m in &result.baseline {
        out.push_str(&format!("{:>8}", two_significant_digits(m.seconds)));
    }
    out.push('\n');
    for (level, row) in &result.levels {
        out.push_str(&format!("{:<10}", level.label()));
        for m in row {
            out.push_str(&format!("{:>8}", two_significant_digits(m.seconds)));
        }
        out.push('\n');
    }
    out
}

/// One point of a tenant-scaling figure.
pub struct FigurePoint {
    pub tenants: i64,
    pub query: usize,
    /// Response time of plain TPC-H on the same data volume.
    pub tpch_seconds: f64,
    /// MT-H response time at o4, relative to TPC-H.
    pub o4_relative: f64,
    /// MT-H response time at inl-only, relative to TPC-H.
    pub inl_only_relative: f64,
}

/// Regenerate one tenant-scaling figure (Figure 5 with `postgres_like`,
/// Figure 6 without).
pub fn run_figure(
    tenant_counts: &[i64],
    postgres_like: bool,
    scale: f64,
) -> Result<Vec<FigurePoint>, String> {
    let mut points = Vec::new();
    for &tenants in tenant_counts {
        let dep = scaling_deployment(tenants, postgres_like, scale);
        for &query in &queries::CONVERSION_HEAVY {
            let baseline = measure_baseline(&dep, query, RUNS)?;
            let o4 = measure_mt(&dep, query, OptLevel::O4, RUNS)?;
            let inl = measure_mt(&dep, query, OptLevel::InlineOnly, RUNS)?;
            let tpch = baseline.seconds.max(1e-9);
            points.push(FigurePoint {
                tenants,
                query,
                tpch_seconds: baseline.seconds,
                o4_relative: o4.seconds / tpch,
                inl_only_relative: inl.seconds / tpch,
            });
        }
    }
    Ok(points)
}

/// Render figure points as the series the paper plots.
pub fn render_figure(points: &[FigurePoint], figure_number: u8) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure {figure_number}: response time relative to TPC-H (Q1/Q6/Q22, o4 vs inl-only)\n"
    ));
    out.push_str(&format!(
        "{:>8} {:>6} {:>12} {:>12} {:>12}\n",
        "tenants", "query", "tpch[s]", "o4/tpch", "inl/tpch"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>8} {:>6} {:>12} {:>12.2} {:>12.2}\n",
            p.tenants,
            format!("Q{}", p.query),
            two_significant_digits(p.tpch_seconds),
            p.o4_relative,
            p.inl_only_relative
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_scopes_are_valid_mtsql() {
        for spec in [
            DatasetSpec::Own,
            DatasetSpec::SingleForeign,
            DatasetSpec::All,
        ] {
            let sql = spec.scope_sql(4);
            assert!(mtsql::parse_statement(&sql).is_ok(), "{sql}");
        }
    }

    #[test]
    fn table_specs_cover_both_engines_and_all_datasets() {
        assert_eq!(TABLES.len(), 6);
        assert_eq!(TABLES.iter().filter(|t| t.postgres_like).count(), 3);
        assert_eq!(
            TABLES
                .iter()
                .filter(|t| t.dataset == DatasetSpec::All)
                .count(),
            2
        );
    }

    #[test]
    fn measure_cell_runs_a_small_query() {
        let dep = scaling_deployment(2, true, 0.05);
        let m = measure_cell(&dep, DatasetSpec::All, 6, OptLevel::O4, 1).unwrap();
        assert!(m.seconds >= 0.0);
        assert_eq!(m.query, 6);
    }
}

//! Ready-made MTBase instances for tests, examples and documentation: the
//! running example of the paper (Figure 2) with two tenants, currency
//! conversion and the `Tenant` meta table used for function inlining.

use std::sync::Arc;

use mtcatalog::ConversionProfile;
use mtengine::{EngineConfig, Value};
use mtrewrite::{InlineRegistry, InlineSpec};
use mtsql::ast::Statement;

use crate::server::{currency_udfs_from_rates, MtBase};
use crate::TenantId;

/// Exchange rates of the running example: tenant 0 uses USD (the universal
/// format), tenant 1 uses EUR. `(to_universal, from_universal)` factors.
pub fn example_rates(tenant: TenantId) -> (f64, f64) {
    match tenant {
        1 => (1.25, 0.80),
        _ => (1.0, 1.0),
    }
}

/// Build the paper's running example (Figure 2) as a fully-wired MTBase
/// instance: schema, data, conversion functions, meta tables and tenants.
pub fn running_example_server(config: EngineConfig) -> Arc<MtBase> {
    let server = MtBase::new(config);

    // Schema (MTSQL DDL, §2.2.1).
    let ddl = [
        "CREATE TABLE Employees SPECIFIC (
            E_emp_id INTEGER NOT NULL SPECIFIC,
            E_name VARCHAR(25) NOT NULL COMPARABLE,
            E_role_id INTEGER NOT NULL SPECIFIC,
            E_reg_id INTEGER NOT NULL COMPARABLE,
            E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
            E_age INTEGER NOT NULL COMPARABLE
        )",
        "CREATE TABLE Roles SPECIFIC (
            R_role_id INTEGER NOT NULL SPECIFIC,
            R_name VARCHAR(25) NOT NULL COMPARABLE
        )",
        "CREATE TABLE Regions GLOBAL (
            Re_reg_id INTEGER NOT NULL,
            Re_name VARCHAR(25) NOT NULL
        )",
    ];
    for sql in ddl {
        let stmt = mtsql::parse_statement(sql).expect("running example DDL parses");
        match stmt {
            Statement::CreateTable(ct) => server.create_table(&ct).expect("create table"),
            _ => unreachable!(),
        }
    }

    // Tenants and conversion functions.
    for t in 0..2 {
        server.register_tenant(t).expect("register tenant");
    }
    let (to_impl, from_impl) = currency_udfs_from_rates(Arc::new(|t: TenantId| example_rates(t)));
    server.register_conversion(
        ConversionProfile::currency().pair,
        to_impl,
        from_impl,
        Some((
            InlineSpec::Factor {
                meta_table: "Tenant".into(),
                key_column: "T_tenant_key".into(),
                factor_column: "T_currency_to".into(),
            },
            InlineSpec::Factor {
                meta_table: "Tenant".into(),
                key_column: "T_tenant_key".into(),
                factor_column: "T_currency_from".into(),
            },
        )),
    );

    // Meta table used by the inlining optimization (o4 / inl-only).
    {
        let mut engine = server.engine.write();
        engine.create_table(
            "Tenant",
            &[
                "T_tenant_key",
                "T_currency_to",
                "T_currency_from",
                "T_phone_prefix",
            ],
        );
        engine
            .insert_values(
                "Tenant",
                (0..2)
                    .map(|t| {
                        let (to, from) = example_rates(t);
                        vec![
                            Value::Int(t),
                            Value::Float(to),
                            Value::Float(from),
                            Value::str(if t == 0 { "+" } else { "00" }),
                        ]
                    })
                    .collect(),
            )
            .expect("load Tenant meta table");
    }

    // Data of Figure 2. Salaries are stored in the owner's currency.
    let employees = vec![
        (0, 0, "Patrick", 1, 3, 50_000.0, 30),
        (0, 1, "John", 0, 3, 70_000.0, 28),
        (0, 2, "Alice", 2, 3, 150_000.0, 46),
        (1, 0, "Allan", 1, 2, 80_000.0, 25),
        (1, 1, "Nancy", 2, 4, 200_000.0, 72),
        (1, 2, "Ed", 0, 4, 1_000_000.0, 46),
    ];
    server
        .load_rows(
            "Employees",
            employees
                .into_iter()
                .map(|(t, id, name, role, reg, salary, age)| {
                    vec![
                        Value::Int(t),
                        Value::Int(id),
                        Value::str(name),
                        Value::Int(role),
                        Value::Int(reg),
                        Value::Float(salary),
                        Value::Int(age),
                    ]
                })
                .collect(),
        )
        .expect("load Employees");
    let roles = vec![
        (0, 0, "phD stud."),
        (0, 1, "postdoc"),
        (0, 2, "professor"),
        (1, 0, "intern"),
        (1, 1, "researcher"),
        (1, 2, "executive"),
    ];
    server
        .load_rows(
            "Roles",
            roles
                .into_iter()
                .map(|(t, id, name)| vec![Value::Int(t), Value::Int(id), Value::str(name)])
                .collect(),
        )
        .expect("load Roles");
    let regions = vec![
        (0, "AFRICA"),
        (1, "ASIA"),
        (2, "AUSTRALIA"),
        (3, "EUROPE"),
        (4, "N-AMERICA"),
        (5, "S-AMERICA"),
    ];
    server
        .load_rows(
            "Regions",
            regions
                .into_iter()
                .map(|(id, name)| vec![Value::Int(id), Value::str(name)])
                .collect(),
        )
        .expect("load Regions");

    let _ = InlineRegistry::mt_h(); // keep the dependency explicit for readers
    server
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrewrite::OptLevel;

    fn server() -> Arc<MtBase> {
        running_example_server(EngineConfig::default())
    }

    #[test]
    fn default_scope_sees_only_own_data() {
        let server = server();
        let mut conn = server.connect(0);
        let rs = conn
            .query("SELECT E_name FROM Employees ORDER BY E_name")
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][0], Value::str("Alice"));
    }

    #[test]
    fn cross_tenant_query_converts_salaries_to_client_format() {
        let server = server();
        server.grant_read_all(0).expect("grant read");
        let mut conn = server.connect(0);
        conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
        // Ed earns 1,000,000 EUR = 1,250,000 USD for client 0.
        let rs = conn
            .query("SELECT E_name, E_salary FROM Employees WHERE E_age = 46 ORDER BY E_name")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        let ed = rs.rows.iter().find(|r| r[0] == Value::str("Ed")).unwrap();
        assert_eq!(ed[1], Value::Float(1_250_000.0));
        let alice = rs
            .rows
            .iter()
            .find(|r| r[0] == Value::str("Alice"))
            .unwrap();
        assert_eq!(alice[1], Value::Float(150_000.0));
    }

    #[test]
    fn same_query_for_tenant_one_returns_eur() {
        let server = server();
        server.grant_read_all(1).expect("grant read");
        let mut conn = server.connect(1);
        conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
        // Alice earns 150,000 USD = 120,000 EUR for client 1.
        let rs = conn
            .query("SELECT E_name, E_salary FROM Employees WHERE E_name = 'Alice'")
            .unwrap();
        assert_eq!(rs.rows[0][1], Value::Float(120_000.0));
    }

    #[test]
    fn every_optimization_level_returns_the_same_result() {
        let server = server();
        server.grant_read_all(0).expect("grant read");
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for level in OptLevel::ALL {
            let mut conn = server.connect(0);
            conn.set_opt_level(level);
            conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
            let rs = conn
                .query(
                    "SELECT E_name, E_salary FROM Employees WHERE E_salary > 100000 ORDER BY E_name",
                )
                .unwrap();
            let rounded: Vec<Vec<Value>> = rs
                .rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|v| match v {
                            Value::Float(f) => Value::Float((f * 100.0).round() / 100.0),
                            other => other.clone(),
                        })
                        .collect()
                })
                .collect();
            match &reference {
                None => reference = Some(rounded),
                Some(expected) => assert_eq!(&rounded, expected, "level {level:?} diverges"),
            }
        }
        // Alice (150k USD), Ed (1.25M USD), Nancy (250k USD) all earn > 100k.
        assert_eq!(reference.unwrap().len(), 3);
    }

    #[test]
    fn join_across_tenants_respects_ttid() {
        let server = server();
        server.grant_read_all(0).expect("grant read");
        let mut conn = server.connect(0);
        conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
        let rs = conn
            .query(
                "SELECT E_name, R_name FROM Employees, Roles WHERE E_role_id = R_role_id \
                 ORDER BY E_name",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 6);
        let ed = rs.rows.iter().find(|r| r[0] == Value::str("Ed")).unwrap();
        // Ed (tenant 1, role 0) is an intern — never a "phD stud." of tenant 0.
        assert_eq!(ed[1], Value::str("intern"));
    }

    #[test]
    fn complex_scope_selects_tenants_by_predicate() {
        let server = server();
        server.grant_read_all(0).expect("grant read");
        let mut conn = server.connect(0);
        // Tenants owning at least one employee earning > 180k USD (client
        // format): tenant 1 (Nancy 250k, Ed 1.25M); tenant 0's max is 150k.
        conn.execute("SET SCOPE = \"FROM Employees WHERE E_salary > 180000\"")
            .unwrap();
        let rs = conn.query("SELECT COUNT(*) FROM Employees").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn grants_extend_and_revokes_shrink_the_visible_data() {
        let server = server();
        // Tenant 1 grants tenant 0 read access to her employees.
        let mut owner = server.connect(1);
        owner.execute("GRANT READ ON Employees TO 0").unwrap();

        let mut conn = server.connect(0);
        conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
        let rs = conn.query("SELECT COUNT(*) FROM Employees").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(6));

        // Without the grant the dataset is pruned to the client's own data.
        let mut owner = server.connect(1);
        owner.execute("REVOKE READ ON Employees FROM 0").unwrap();
        let rs = conn.query("SELECT COUNT(*) FROM Employees").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn insert_on_behalf_of_other_tenant_converts_values() {
        let server = server();
        // Tenant 1 allows tenant 0 to insert.
        let mut owner = server.connect(1);
        owner
            .execute("GRANT INSERT, READ ON Employees TO 0")
            .unwrap();

        let mut conn = server.connect(0);
        conn.execute("SET SCOPE = \"IN (1)\"").unwrap();
        // 125,000 USD (client format) must be stored as 100,000 EUR.
        conn.execute(
            "INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) \
             VALUES (3, 'Grace', 0, 3, 125000, 40)",
        )
        .unwrap();
        let raw = server
            .raw_query("SELECT E_salary FROM Employees WHERE E_name = 'Grace'")
            .unwrap();
        assert_eq!(raw.rows[0][0], Value::Float(100_000.0));
    }

    #[test]
    fn update_and_delete_respect_scope_and_privileges() {
        let server = server();
        let mut conn = server.connect(0);
        // Default scope {0}: only own rows are touched.
        let rs = conn
            .execute("UPDATE Employees SET E_age = E_age WHERE E_age > 20")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
        let rs = conn
            .execute("DELETE FROM Employees WHERE E_name = 'Ed'")
            .unwrap();
        // Ed belongs to tenant 1 — nothing deleted without a grant.
        assert_eq!(rs.rows[0][0], Value::Int(0));
    }

    #[test]
    fn rewrite_only_exposes_generated_sql() {
        let server = server();
        let mut conn = server.connect(0);
        conn.set_opt_level(OptLevel::Canonical);
        conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
        let q = conn
            .rewrite_only("SELECT AVG(E_salary) AS a FROM Employees")
            .unwrap();
        assert!(q.to_string().contains("currencyToUniversal"));
    }
}

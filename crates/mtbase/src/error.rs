//! Middleware error type, unifying parse, rewrite and engine errors.

use std::fmt;

/// Errors surfaced to MTBase clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MtError {
    /// The statement could not be parsed.
    Parse(String),
    /// The statement could not be rewritten (e.g. illegal comparison).
    Rewrite(String),
    /// The underlying engine rejected the rewritten statement.
    Engine(String),
    /// The client lacks a privilege required by the statement.
    Privilege(String),
    /// The durability layer failed: a WAL I/O error, a short read or a
    /// corrupt record during recovery, or a writer left dead by a
    /// (simulated) crash. The in-memory state still reflects exactly the
    /// committed prefix.
    Durability(String),
    /// A pinned cursor snapshot can no longer be served (the underlying
    /// table was destructively rewritten). Re-open the cursor.
    Snapshot(String),
    /// The static plan verifier rejected a physical plan before execution —
    /// a planner or rewrite defect, never a data problem. The message names
    /// the operator and the violated structural invariant.
    Plan(String),
    /// Anything else (unsupported feature, configuration problem, ...).
    Other(String),
}

impl fmt::Display for MtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtError::Parse(m) => write!(f, "parse error: {m}"),
            MtError::Rewrite(m) => write!(f, "rewrite error: {m}"),
            MtError::Engine(m) => write!(f, "engine error: {m}"),
            MtError::Privilege(m) => write!(f, "privilege error: {m}"),
            MtError::Durability(m) => write!(f, "durability error: {m}"),
            MtError::Snapshot(m) => write!(f, "snapshot error: {m}"),
            MtError::Plan(m) => write!(f, "plan verification error: {m}"),
            MtError::Other(m) => write!(f, "error: {m}"),
        }
    }
}

impl std::error::Error for MtError {}

impl From<mtsql::ParseError> for MtError {
    fn from(e: mtsql::ParseError) -> Self {
        MtError::Parse(e.to_string())
    }
}

impl From<mtrewrite::RewriteError> for MtError {
    fn from(e: mtrewrite::RewriteError) -> Self {
        MtError::Rewrite(e.message)
    }
}

impl From<mtengine::EngineError> for MtError {
    fn from(e: mtengine::EngineError) -> Self {
        use mtengine::EngineErrorKind as K;
        match e.kind() {
            K::Io | K::ShortRead | K::Corrupt | K::Poisoned => MtError::Durability(e.message),
            K::SnapshotInvalidated => MtError::Snapshot(e.message),
            K::Plan => MtError::Plan(e.message),
            K::General | K::Deadlock | K::LockTimeout => MtError::Engine(e.message),
        }
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, MtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: MtError = mtsql::ParseError::new("bad token").into();
        assert!(e.to_string().contains("bad token"));
        let e: MtError = mtrewrite::RewriteError::new("mixed predicate").into();
        assert!(e.to_string().contains("mixed predicate"));
        let e: MtError = mtengine::EngineError::new("no such table").into();
        assert!(e.to_string().contains("no such table"));
    }
}

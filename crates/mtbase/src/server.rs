//! The MTBase server: catalog + engine + conversion functions, shared by all
//! client connections.

use std::sync::{Arc, OnceLock};

use mtcatalog::{Catalog, ConversionFnPair, Privilege, TenantId, TTID_COLUMN};
use mtengine::udf::UdfImpl;
use mtengine::{Engine, EngineConfig, LockManager, MetaOp, ResultSet, Transaction, Value};
use mtrewrite::{InlineRegistry, OptLevel, Rewriter};
use mtsql::ast::{CreateTable, Query, ScopeSpec, Statement, TableGenerality};
use parking_lot::{Mutex, RwLock};

use crate::connection::Connection;
use crate::error::{MtError, Result};
use crate::plan_cache::{CachedPlan, PlanCache, PlanCacheKey, PLAN_CACHE_CAPACITY};

/// Shared MTBase state. Connections borrow it through an [`Arc`].
pub struct MtBase {
    pub(crate) catalog: RwLock<Catalog>,
    pub(crate) engine: RwLock<Engine>,
    pub(crate) inline_registry: RwLock<InlineRegistry>,
    pub(crate) default_level: RwLock<OptLevel>,
    /// Prepared-plan LRU shared by all connections (see [`crate::plan_cache`]).
    pub(crate) plan_cache: Mutex<PlanCache>,
    /// Row/bucket-level writer locks for multi-statement transactions
    /// (see [`mtengine::LockManager`]). Never acquired while the engine
    /// lock is held — lock acquisition can block for seconds waiting on a
    /// conflicting transaction, and everything else would stall behind it.
    pub(crate) locks: LockManager,
    /// Cached outcome of the strict environment-override validation (first
    /// statement of the deployment; durable opens also validate eagerly).
    env_check: OnceLock<std::result::Result<(), String>>,
}

impl MtBase {
    /// Create an MTBase instance on top of a fresh engine.
    pub fn new(engine_config: EngineConfig) -> Arc<Self> {
        Arc::new(MtBase {
            catalog: RwLock::new(Catalog::new()),
            engine: RwLock::new(Engine::new(engine_config)),
            inline_registry: RwLock::new(InlineRegistry::new()),
            default_level: RwLock::new(OptLevel::O4),
            plan_cache: Mutex::new(PlanCache::new(PLAN_CACHE_CAPACITY)),
            locks: LockManager::new(),
            env_check: OnceLock::new(),
        })
    }

    /// Create an MTBase instance wrapping an existing, already-populated
    /// engine and catalog (used by the MT-H loader).
    pub fn from_parts(
        engine: Engine,
        catalog: Catalog,
        inline_registry: InlineRegistry,
    ) -> Arc<Self> {
        Arc::new(MtBase {
            catalog: RwLock::new(catalog),
            engine: RwLock::new(engine),
            inline_registry: RwLock::new(inline_registry),
            default_level: RwLock::new(OptLevel::O4),
            plan_cache: Mutex::new(PlanCache::new(PLAN_CACHE_CAPACITY)),
            locks: LockManager::new(),
            env_check: OnceLock::new(),
        })
    }

    /// Validate the `MT_THREADS` / `MT_VERIFY` / `WAL_FAULT_MODE`
    /// environment overrides once per deployment, surfacing a typo'd value
    /// as a clear error on the first statement instead of a silently
    /// applied default (see [`mtengine::validate_env_overrides`]).
    pub(crate) fn check_env(&self) -> Result<()> {
        let outcome = self
            .env_check
            .get_or_init(|| mtengine::validate_env_overrides().map_err(|e| e.to_string()));
        outcome.clone().map_err(MtError::Other)
    }

    /// Open (or create) a durable MTBase deployment backed by the WAL at
    /// `path`: replay the committed engine state, rebuild the catalog from
    /// the logged DDL/DCL records, and couple the catalog epoch to the
    /// replay horizon (so cached-plan epochs never repeat across a crash).
    /// Conversion functions are **not** recovered — native closures do not
    /// serialize — so re-register them via [`MtBase::register_conversion`]
    /// after open, exactly as on a fresh instance.
    pub fn open_durable(engine_config: EngineConfig, path: &std::path::Path) -> Result<Arc<Self>> {
        // Validate the environment overrides before touching the WAL: a
        // typo'd `WAL_FAULT_MODE` must fail the startup, not silently run
        // the deployment without the requested fault injection.
        mtengine::validate_env_overrides()?;
        let mut engine = Engine::open(engine_config, path)?;
        let mut catalog = Catalog::new();
        for op in engine.take_recovered_meta() {
            match op {
                MetaOp::CreateTableDdl { sql } => match mtsql::parse_statement(&sql) {
                    Ok(Statement::CreateTable(ct)) => catalog.register_create_table(&ct),
                    _ => {
                        return Err(MtError::Durability(format!(
                            "recovered catalog record is not a CREATE TABLE: {sql}"
                        )))
                    }
                },
                MetaOp::RegisterTenant { tenant } => catalog.register_tenant(tenant),
                MetaOp::Grant {
                    owner,
                    grantee,
                    table,
                    privileges,
                } => {
                    catalog.register_tenant(grantee);
                    catalog.privileges_mut().grant(
                        owner,
                        &table,
                        grantee,
                        &decode_privileges(privileges),
                    );
                }
                MetaOp::Revoke {
                    owner,
                    grantee,
                    table,
                    privileges,
                } => {
                    catalog.privileges_mut().revoke(
                        owner,
                        &table,
                        grantee,
                        &decode_privileges(privileges),
                    );
                }
                MetaOp::DropTable { name } => {
                    catalog.drop_table(&name);
                }
            }
        }
        catalog.set_epoch_floor(engine.wal_last_lsn());
        Ok(Self::from_parts(engine, catalog, InlineRegistry::new()))
    }

    /// Open a connection for the given client tenant (the connection string's
    /// ttid in the paper). The scope defaults to `{C}`. Tenant registration
    /// is idempotent; on a durable deployment whose WAL writer has failed,
    /// the registration is skipped here and the failure surfaces on the
    /// connection's first logged statement instead.
    pub fn connect(self: &Arc<Self>, client: TenantId) -> Connection {
        let _ = self.register_tenant(client);
        Connection::new(Arc::clone(self), client)
    }

    /// Set the optimization level used by default for all new statements.
    pub fn set_default_opt_level(&self, level: OptLevel) {
        *self.default_level.write() = level;
    }

    /// The default optimization level.
    pub fn default_opt_level(&self) -> OptLevel {
        *self.default_level.read()
    }

    /// Register a tenant (tenants are also registered implicitly on connect).
    /// On durable deployments the registration is logged *before* it is
    /// applied, so recovery sees exactly the registered tenants.
    pub fn register_tenant(&self, tenant: TenantId) -> Result<()> {
        if self.catalog.read().has_tenant(tenant) {
            return Ok(());
        }
        // Write-ahead: log, then apply. A racing duplicate registration logs
        // twice; catalog replay is idempotent.
        self.engine
            .write()
            .log_meta(MetaOp::RegisterTenant { tenant })?;
        self.catalog.write().register_tenant(tenant);
        Ok(())
    }

    /// Register a conversion-function pair: catalog metadata, the native UDF
    /// implementations, and (optionally) an inline specification for the o4 /
    /// inl-only levels.
    pub fn register_conversion(
        &self,
        pair: ConversionFnPair,
        to_impl: UdfImpl,
        from_impl: UdfImpl,
        inline: Option<(mtrewrite::InlineSpec, mtrewrite::InlineSpec)>,
    ) {
        {
            // Engine guard released before the catalog lock below: the
            // plan-cache front-end acquires catalog → engine, so holding
            // engine while taking catalog would invert the lock order.
            let mut engine = self.engine.write();
            engine.register_udf(&pair.to_universal, pair.immutable, to_impl);
            engine.register_udf(&pair.from_universal, pair.immutable, from_impl);
        }
        if let Some((to_spec, from_spec)) = inline {
            let mut reg = self.inline_registry.write();
            reg.register(&pair.to_universal, to_spec);
            reg.register(&pair.from_universal, from_spec);
        }
        self.catalog.write().register_conversion(pair);
    }

    /// Execute a DDL `CREATE TABLE`: register the logical schema in the
    /// catalog and create the physical shared table (with the invisible ttid
    /// column for tenant-specific tables — the basic layout of Figure 2).
    /// Tenant-specific tables are partitioned by `ttid`, so scans can prune
    /// foreign tenants that the statement's scope excludes.
    pub fn create_table(&self, ct: &CreateTable) -> Result<()> {
        let tenant_specific = ct.generality == TableGenerality::TenantSpecific;
        let mut columns: Vec<String> = Vec::new();
        if tenant_specific {
            columns.push(TTID_COLUMN.to_string());
        }
        columns.extend(ct.columns.iter().map(|c| c.name.clone()));
        {
            // Engine first: the physical table, its partition declaration and
            // the catalog DDL record (logged as SQL text, reparsed on
            // recovery) commit as one WAL transaction. The catalog is only
            // updated after that transaction is durable.
            let mut engine = self.engine.write();
            let meta = engine.is_durable().then(|| MetaOp::CreateTableDdl {
                sql: ct.to_string(),
            });
            engine.create_table_logged(
                &ct.name,
                columns,
                tenant_specific.then_some(TTID_COLUMN),
                meta,
            )?;
        }
        self.catalog.write().register_create_table(ct);
        Ok(())
    }

    /// Run plain SQL directly against the engine, bypassing the middleware
    /// (used for loading data and for the single-tenant TPC-H baseline).
    pub fn raw_execute(&self, sql: &str) -> Result<ResultSet> {
        Ok(self.engine.write().execute(sql)?)
    }

    /// Run a plain SQL query directly against the engine.
    pub fn raw_query(&self, sql: &str) -> Result<ResultSet> {
        Ok(self.engine.read().query(sql)?)
    }

    /// Bulk-load rows into a physical table.
    pub fn load_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<()> {
        Ok(self.engine.write().insert_values(table, rows)?)
    }

    /// Reset the engine statistics and UDF caches.
    pub fn reset_stats(&self) {
        self.engine.read().reset_stats();
    }

    /// Snapshot the engine statistics.
    pub fn stats(&self) -> mtengine::stats::StatsSnapshot {
        self.engine.read().stats()
    }

    /// Install a crash-fault injection clock on the engine's WAL writer
    /// (test harness hook — see [`mtengine::FailpointClock`]). No effect on
    /// a non-durable deployment.
    pub fn set_failpoint_clock(&self, clock: std::sync::Arc<mtengine::FailpointClock>) {
        self.engine.write().set_failpoint_clock(clock);
    }

    /// Grant `grantee` read access to every registered tenant's share of all
    /// tenant-specific tables. This is the setup used by the MT-H benchmark,
    /// where the querying client (e.g. a research institution) has been given
    /// access to the entire joint dataset.
    pub fn grant_read_all(&self, grantee: TenantId) -> Result<()> {
        let (owners, tables) = {
            let catalog = self.catalog.read();
            let owners: Vec<TenantId> = catalog.tenants().to_vec();
            let tables: Vec<String> = catalog
                .tables()
                .filter(|t| t.is_tenant_specific())
                .map(|t| t.name.clone())
                .collect();
            (owners, tables)
        };
        // Write-ahead: every grant is logged before any is applied.
        {
            let mut engine = self.engine.write();
            if engine.is_durable() {
                for owner in &owners {
                    for table in &tables {
                        engine.log_meta(MetaOp::Grant {
                            owner: *owner,
                            grantee,
                            table: table.clone(),
                            privileges: encode_privileges(&[Privilege::Read]),
                        })?;
                    }
                }
            }
        }
        let mut catalog = self.catalog.write();
        for owner in owners {
            for table in &tables {
                catalog
                    .privileges_mut()
                    .grant(owner, table, grantee, &[Privilege::Read]);
            }
        }
        Ok(())
    }

    /// Execute a statement issued by `client` outside of any connection (used
    /// by tests); equivalent to `connect(client).execute(sql)`.
    pub fn execute_as(self: &Arc<Self>, client: TenantId, sql: &str) -> Result<ResultSet> {
        let mut conn = self.connect(client);
        conn.execute(sql)
    }

    /// Number of plans currently held by the prepared-plan cache.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.lock().len()
    }

    /// Drop every cached plan. Correctness never depends on this — stale
    /// plans are invalidated by the epoch key — but benchmarks use it to
    /// measure the uncached front-end cost, and long-lived deployments may
    /// use it to release memory after a large ad-hoc workload.
    pub fn clear_plan_cache(&self) {
        self.plan_cache.lock().clear();
    }

    /// Commit an open transaction: the three-phase group-commit protocol.
    ///
    /// 1. **Append** — under the engine write lock, the staged records plus
    ///    one commit marker go to the WAL tail (fast: no fsync in
    ///    group-commit mode).
    /// 2. **Flush** — *outside* the engine lock, wait until a flush covers
    ///    the commit LSN ([`mtengine::WalHandle::wait_durable`]). This is
    ///    the batching window: concurrent committers park here and one
    ///    leader's `fsync` covers them all.
    /// 3. **Publish** — retake the engine lock and lift the transaction's
    ///    epochs above the committed visibility floor; only now do snapshot
    ///    readers observe the rows. Then release the writer locks.
    ///
    /// Any failure before publish rolls the in-memory application back, so
    /// memory never claims a commit the log does not have: a failed append
    /// logged nothing, and a failed flush poisons the WAL writer — recovery
    /// trusts nothing past the last synced LSN, so the undo keeps memory
    /// and log in agreement.
    pub(crate) fn finish_txn_commit(&self, mut txn: Transaction) -> Result<()> {
        let owner = txn.id();
        let appended: Result<()> = (|| {
            let (lsn, handle) = {
                let mut engine = self.engine.write();
                let lsn = engine.txn_append(&mut txn)?;
                (lsn, engine.wal_handle())
            };
            if let (Some(lsn), Some(handle)) = (lsn, handle) {
                handle.wait_durable(lsn)?;
            }
            Ok(())
        })();
        match appended {
            Ok(()) => {
                self.engine.write().txn_publish(txn);
                self.locks.release_all(owner);
                Ok(())
            }
            Err(e) => {
                self.engine.write().txn_rollback(txn);
                self.locks.release_all(owner);
                Err(e)
            }
        }
    }

    /// Resolve a scope specification into the dataset `D` (complex scopes
    /// are evaluated against the engine, per Listing 12 of the paper).
    pub(crate) fn resolve_dataset(
        &self,
        client: TenantId,
        scope: &ScopeSpec,
    ) -> Result<Vec<TenantId>> {
        match scope {
            ScopeSpec::Simple(ids) => Ok(ids.clone()),
            ScopeSpec::AllTenants => Ok(self.catalog.read().tenants().to_vec()),
            ScopeSpec::Complex { from, selection } => {
                let scope_query = {
                    let catalog = self.catalog.read();
                    let rewriter = Rewriter::with_inline_registry(
                        &catalog,
                        self.inline_registry.read().clone(),
                    );
                    rewriter.rewrite_scope(from, selection, client)?
                };
                let engine = self.engine.read();
                let result = engine.execute_query(&scope_query)?;
                let mut ids: Vec<TenantId> = result
                    .rows
                    .iter()
                    .filter_map(|r| r.first().and_then(Value::as_i64))
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                Ok(ids)
            }
        }
    }

    /// Resolve the scope and prune it by `client`'s read privileges on the
    /// tenant-specific tables the query references (D → D').
    pub(crate) fn effective_dataset_for_query(
        &self,
        client: TenantId,
        scope: &ScopeSpec,
        query: &Query,
    ) -> Result<Vec<TenantId>> {
        let dataset = self.resolve_dataset(client, scope)?;
        let mut tables = Vec::new();
        collect_tables_query(query, &mut tables);
        let catalog = self.catalog.read();
        Ok(catalog.prune_dataset(client, &dataset, &tables))
    }

    /// The complete per-execution front-end shared by one-shot queries,
    /// `EXPLAIN` and prepared statements: resolve the effective dataset D'
    /// for (client, scope) — always re-evaluated, correctness depends on it
    /// — then fetch (or build) the cached plan under the current level and
    /// catalog epoch.
    pub(crate) fn resolve_cached_plan(
        &self,
        client: TenantId,
        scope: &ScopeSpec,
        level: OptLevel,
        sql_key: &str,
        query: &Query,
    ) -> Result<(Arc<CachedPlan>, bool)> {
        let dataset = self.effective_dataset_for_query(client, scope, query)?;
        self.cached_plan(sql_key, client, query, &dataset, level)
    }

    /// The prepared-plan front-end: look the query up in the plan cache
    /// under `(normalized SQL, C, D', level, catalog epoch)`; on a miss, run
    /// rewrite + planning once and cache the result. Returns the plan and
    /// whether it was a hit; the outcome is recorded in the engine's
    /// `prepared_cache_hits` / `prepared_cache_misses` counters.
    pub(crate) fn cached_plan(
        &self,
        sql_key: &str,
        client: TenantId,
        query: &Query,
        dataset: &[TenantId],
        level: OptLevel,
    ) -> Result<(Arc<CachedPlan>, bool)> {
        // The epoch and the rewrite read the catalog under one guard, so the
        // cached plan is consistent with the epoch in its key. The engine
        // lock is never taken while the catalog guard is held (lock order is
        // catalog → release → engine everywhere; inverting it can deadlock
        // against writers that hold the engine lock).
        let (key, rewritten) = {
            let catalog = self.catalog.read();
            let key = PlanCacheKey {
                sql: sql_key.to_string(),
                client,
                dataset: dataset.to_vec(),
                level,
                epoch: catalog.epoch(),
            };
            if let Some(hit) = self.plan_cache.lock().get(&key) {
                drop(catalog);
                self.engine.read().note_prepared_cache(true);
                return Ok((hit, true));
            }
            let rewriter =
                Rewriter::with_inline_registry(&catalog, self.inline_registry.read().clone());
            let rewritten = rewriter.rewrite_query(query, client, dataset, level)?;
            (key, rewritten)
        };
        let plan = {
            let engine = self.engine.read();
            let plan = engine.plan_query(&rewritten)?;
            engine.note_prepared_cache(false);
            plan
        };
        let cached = Arc::new(CachedPlan {
            rewritten,
            plan: Arc::new(plan),
        });
        self.plan_cache.lock().insert(key, Arc::clone(&cached));
        Ok((cached, false))
    }
}

pub(crate) fn collect_tables_query(query: &mtsql::ast::Query, out: &mut Vec<String>) {
    use mtsql::ast::{Expr, SelectItem, TableRef};

    fn collect_table_ref(t: &TableRef, out: &mut Vec<String>) {
        match t {
            TableRef::Table { name, .. } => {
                if !out.iter().any(|n| n.eq_ignore_ascii_case(name)) {
                    out.push(name.clone());
                }
            }
            TableRef::Derived { query, .. } => collect_tables_query(query, out),
            TableRef::Join { left, right, .. } => {
                collect_table_ref(left, out);
                collect_table_ref(right, out);
            }
        }
    }

    fn collect_expr(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Exists { query, .. } | Expr::InSubquery { query, .. } => {
                collect_tables_query(query, out)
            }
            Expr::ScalarSubquery(q) => collect_tables_query(q, out),
            Expr::BinaryOp { left, right, .. } => {
                collect_expr(left, out);
                collect_expr(right, out);
            }
            Expr::UnaryOp { expr, .. } => collect_expr(expr, out),
            Expr::Function(f) => f.args.iter().for_each(|a| collect_expr(a, out)),
            Expr::InList { expr, list, .. } => {
                collect_expr(expr, out);
                list.iter().for_each(|i| collect_expr(i, out));
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                collect_expr(expr, out);
                collect_expr(low, out);
                collect_expr(high, out);
            }
            _ => {}
        }
    }

    for t in &query.body.from {
        collect_table_ref(t, out);
    }
    if let Some(sel) = &query.body.selection {
        collect_expr(sel, out);
    }
    if let Some(h) = &query.body.having {
        collect_expr(h, out);
    }
    for item in &query.body.projection {
        if let SelectItem::Expr { expr, .. } = item {
            collect_expr(expr, out);
        }
    }
}

/// Register the paper's currency conversion pair backed by a per-tenant
/// exchange-rate table (`Tenant(T_tenant_key, T_currency_to, T_currency_from,
/// T_phone_prefix)`) that must already exist in the engine. Returns the rates
/// closure used by both directions.
pub fn currency_udfs_from_rates(
    rates: Arc<dyn Fn(TenantId) -> (f64, f64) + Send + Sync>,
) -> (UdfImpl, UdfImpl) {
    let to_rates = Arc::clone(&rates);
    let to_impl: UdfImpl = Arc::new(move |args: &[Value]| {
        if args.first().is_some_and(Value::is_null) {
            return Ok(Value::Null);
        }
        let value = args.first().and_then(Value::as_f64).ok_or_else(|| {
            mtengine::EngineError::new("currencyToUniversal: numeric value expected")
        })?;
        let tenant = args
            .get(1)
            .and_then(Value::as_i64)
            .ok_or_else(|| mtengine::EngineError::new("currencyToUniversal: tenant id expected"))?;
        let (to, _) = to_rates(tenant);
        Ok(Value::Float(value * to))
    });
    let from_impl: UdfImpl = Arc::new(move |args: &[Value]| {
        if args.first().is_some_and(Value::is_null) {
            return Ok(Value::Null);
        }
        let value = args.first().and_then(Value::as_f64).ok_or_else(|| {
            mtengine::EngineError::new("currencyFromUniversal: numeric value expected")
        })?;
        let tenant = args.get(1).and_then(Value::as_i64).ok_or_else(|| {
            mtengine::EngineError::new("currencyFromUniversal: tenant id expected")
        })?;
        let (_, from) = rates(tenant);
        Ok(Value::Float(value * from))
    });
    (to_impl, from_impl)
}

/// Build phone-format conversion UDFs from a per-tenant prefix lookup.
pub fn phone_udfs_from_prefixes(
    prefixes: Arc<dyn Fn(TenantId) -> String + Send + Sync>,
) -> (UdfImpl, UdfImpl) {
    let to_prefixes = Arc::clone(&prefixes);
    let to_impl: UdfImpl = Arc::new(move |args: &[Value]| {
        if args.first().is_some_and(Value::is_null) {
            return Ok(Value::Null);
        }
        let value = args
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| mtengine::EngineError::new("phoneToUniversal: string expected"))?;
        let tenant = args
            .get(1)
            .and_then(Value::as_i64)
            .ok_or_else(|| mtengine::EngineError::new("phoneToUniversal: tenant id expected"))?;
        let prefix = to_prefixes(tenant);
        Ok(Value::str(
            value.strip_prefix(&prefix).unwrap_or(value).to_string(),
        ))
    });
    let from_impl: UdfImpl = Arc::new(move |args: &[Value]| {
        if args.first().is_some_and(Value::is_null) {
            return Ok(Value::Null);
        }
        let value = args
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| mtengine::EngineError::new("phoneFromUniversal: string expected"))?;
        let tenant = args
            .get(1)
            .and_then(Value::as_i64)
            .ok_or_else(|| mtengine::EngineError::new("phoneFromUniversal: tenant id expected"))?;
        let prefix = from_prefix(&prefixes, tenant);
        Ok(Value::str(format!("{prefix}{value}")))
    });
    (to_impl, from_impl)
}

fn from_prefix(
    prefixes: &Arc<dyn Fn(TenantId) -> String + Send + Sync>,
    tenant: TenantId,
) -> String {
    prefixes(tenant)
}

/// Convenience: the error for statements the middleware cannot execute.
pub(crate) fn unsupported(what: &str) -> MtError {
    MtError::Other(format!("unsupported statement: {what}"))
}

/// Every privilege in its WAL bit position: bit `i` of a logged privilege
/// mask is `PRIVILEGE_BITS[i]` (see [`MetaOp::privilege_bit`]).
pub(crate) const PRIVILEGE_BITS: [Privilege; 6] = [
    Privilege::Read,
    Privilege::Insert,
    Privilege::Update,
    Privilege::Delete,
    Privilege::Grant,
    Privilege::Revoke,
];

/// Encode a privilege list as the WAL bitmask.
pub(crate) fn encode_privileges(privileges: &[Privilege]) -> u8 {
    privileges.iter().fold(0u8, |mask, p| {
        let idx = PRIVILEGE_BITS
            .iter()
            .position(|b| b == p)
            .unwrap_or_default();
        mask | MetaOp::privilege_bit(idx)
    })
}

/// Decode a WAL privilege bitmask back into the privilege list.
pub(crate) fn decode_privileges(mask: u8) -> Vec<Privilege> {
    PRIVILEGE_BITS
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & MetaOp::privilege_bit(*i) != 0)
        .map(|(_, p)| *p)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_tables_cover_subqueries() {
        let query = mtsql::parse_query(
            "SELECT a FROM t1 WHERE b IN (SELECT b FROM t2) AND EXISTS (SELECT 1 FROM t3 JOIN t4 ON x = y)",
        )
        .unwrap();
        let mut tables = Vec::new();
        collect_tables_query(&query, &mut tables);
        assert_eq!(tables, vec!["t1", "t2", "t3", "t4"]);
    }

    #[test]
    fn currency_udfs_roundtrip() {
        let rates: Arc<dyn Fn(TenantId) -> (f64, f64) + Send + Sync> =
            Arc::new(|t| if t == 1 { (1.25, 0.8) } else { (1.0, 1.0) });
        let (to, from) = currency_udfs_from_rates(rates);
        let universal = to(&[Value::Float(100.0), Value::Int(1)]).unwrap();
        assert_eq!(universal, Value::Float(125.0));
        let back = from(&[universal, Value::Int(1)]).unwrap();
        assert_eq!(back, Value::Float(100.0));
    }

    #[test]
    fn phone_udfs_strip_and_prepend() {
        let prefixes: Arc<dyn Fn(TenantId) -> String + Send + Sync> = Arc::new(|t| {
            if t == 1 {
                "00".to_string()
            } else {
                "+".to_string()
            }
        });
        let (to, from) = phone_udfs_from_prefixes(prefixes);
        let universal = to(&[Value::str("0041123456"), Value::Int(1)]).unwrap();
        assert_eq!(universal, Value::str("41123456"));
        let back = from(&[universal, Value::Int(0)]).unwrap();
        assert_eq!(back, Value::str("+41123456"));
    }
}

//! Prepared statements and streaming cursors — the session API v2.
//!
//! The lifecycle mirrors mature engine clients (prepare / bind / execute /
//! fetch):
//!
//! ```text
//! let mut stmt = conn.prepare("SELECT ... WHERE l_quantity < $1")?;   // parse once
//! stmt.bind(&[Value::Int(24)])?;                                     // per execution
//! let rs = stmt.execute()?;            // full result, or:
//! let mut cur = stmt.cursor()?;        // stream batch-at-a-time
//! while let Some(batch) = cur.next_batch()? { ... }
//! ```
//!
//! [`Statement::execute`] resolves the current effective dataset `D'`
//! (scope ∩ privileges — cheap, and required for correctness) and then asks
//! the server's plan cache for the `(normalized SQL, C, D', level, epoch)`
//! entry. On a hit the entire rewrite + planning front-end is skipped; the
//! statement was parsed at prepare time, so re-execution performs **zero
//! parse/rewrite/plan work**. DDL, GRANT/REVOKE and other catalog changes
//! bump the epoch and invalidate cached plans wholesale; `SET SCOPE` and
//! opt-level changes alter the key directly. Parameters never participate in
//! the key: binding different values re-executes the same plan, with
//! partition pruning for `ttid = $n` predicates re-resolved at bind time by
//! the executor.

use std::sync::Arc;

use mtcatalog::TenantId;
use mtengine::cursor::{plan_streams, CursorState, DEFAULT_BATCH_ROWS};
use mtengine::plan::Plan;
use mtengine::stats::StatsSnapshot;
use mtengine::table::Row;
use mtengine::{ResultSet, Value};
use mtsql::ast::Query;
use mtsql::visit::param_count_query;
use parking_lot::RwLock;

use crate::connection::Session;
use crate::error::{MtError, Result};
use crate::plan_cache::CachedPlan;
use crate::server::MtBase;

/// A prepared MTSQL query: parsed once, re-planned only when the catalog
/// epoch, scope, opt level or client change — otherwise every execution is a
/// plan-cache hit followed by plain plan execution.
///
/// Created by [`crate::Connection::prepare`]. The statement shares the
/// originating connection's session state, so `SET SCOPE` / opt-level
/// changes on the connection take effect on the statement's next execution
/// (by re-keying the plan-cache lookup — never by serving a stale plan).
pub struct Statement {
    server: Arc<MtBase>,
    client: TenantId,
    session: Arc<RwLock<Session>>,
    /// Normalized SQL (canonical print of the parsed query): the cache-key
    /// text, computed once at prepare time.
    sql: String,
    query: Query,
    param_count: usize,
    params: Vec<Value>,
    last_stats: StatsSnapshot,
}

impl Statement {
    pub(crate) fn new(
        server: Arc<MtBase>,
        client: TenantId,
        session: Arc<RwLock<Session>>,
        query: Query,
    ) -> Self {
        Statement {
            server,
            client,
            session,
            sql: query.to_string(),
            param_count: param_count_query(&query),
            query,
            params: Vec::new(),
            last_stats: StatsSnapshot::default(),
        }
    }

    /// Number of parameter placeholders (`?` / `$n`) the query uses.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The normalized SQL text this statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Bind parameter values positionally (`$1` ⇒ `params[0]`). The value
    /// count must match [`Statement::param_count`]. Binding substitutes
    /// values into the *executor* — the cached plan is untouched, so no
    /// replanning happens; partition-pruning keys that depend on a parameter
    /// re-resolve from the bound values at execution time.
    pub fn bind(&mut self, params: &[Value]) -> Result<&mut Self> {
        if params.len() != self.param_count {
            return Err(MtError::Other(format!(
                "statement expects {} parameter(s), {} bound",
                self.param_count,
                params.len()
            )));
        }
        self.params = params.to_vec();
        Ok(self)
    }

    /// Execute with the currently bound parameters, materializing the full
    /// result set. Equivalent to draining [`Statement::cursor`].
    pub fn execute(&mut self) -> Result<ResultSet> {
        self.check_bound()?;
        let before = self.server.stats();
        let result = (|| {
            let cached = self.resolve()?;
            let engine = self.server.engine.read();
            Ok(engine.execute_plan(&cached.plan, &self.params)?)
        })();
        self.last_stats = self.server.stats().delta_from(&before);
        result
    }

    /// Bind and execute in one call.
    pub fn execute_with(&mut self, params: &[Value]) -> Result<ResultSet> {
        self.bind(params)?.execute()
    }

    /// Open a cursor over the statement's result with the default batch
    /// size. Pipeline-able plans (scan–filter–project chains) stream rows
    /// batch-at-a-time and never materialize the full result; blocking plans
    /// (sorts, aggregates, joins) materialize internally on the first fetch
    /// and expose the same pull interface.
    pub fn cursor(&mut self) -> Result<Cursor> {
        self.cursor_with_batch(DEFAULT_BATCH_ROWS)
    }

    /// Open a cursor fetching at most `batch_rows` rows per
    /// [`Cursor::next_batch`] call.
    pub fn cursor_with_batch(&mut self, batch_rows: usize) -> Result<Cursor> {
        self.check_bound()?;
        let cached = self.resolve()?;
        Cursor::new(
            Arc::clone(&self.server),
            Arc::clone(&cached.plan),
            self.params.clone(),
            batch_rows,
        )
    }

    /// The plain-SQL rewrite this statement currently executes (resolved
    /// through the same cache as `execute`; useful to inspect what MTBase
    /// would send to a DBMS).
    pub fn rewritten(&mut self) -> Result<Query> {
        Ok(self.resolve()?.rewritten.clone())
    }

    /// Engine-counter delta of the last `execute` (see
    /// [`crate::Connection::last_query_stats`]); `prepared_cache_hits` /
    /// `prepared_cache_misses` record whether that execution reused a plan.
    pub fn last_query_stats(&self) -> StatsSnapshot {
        self.last_stats
    }

    fn check_bound(&self) -> Result<()> {
        if self.params.len() != self.param_count {
            return Err(MtError::Other(format!(
                "statement has {} unbound parameter(s); call bind() first",
                self.param_count
            )));
        }
        Ok(())
    }

    /// Resolve the current plan through the shared front-end: effective
    /// dataset first (scope ∩ privileges, always re-evaluated —
    /// correctness), then the plan-cache lookup (rewrite + planning,
    /// amortized).
    fn resolve(&self) -> Result<Arc<CachedPlan>> {
        let (scope, level) = {
            let session = self.session.read();
            (session.scope.clone(), session.level)
        };
        let level = level.unwrap_or_else(|| self.server.default_opt_level());
        let (cached, _hit) =
            self.server
                .resolve_cached_plan(self.client, &scope, level, &self.sql, &self.query)?;
        Ok(cached)
    }
}

/// A pull-based result cursor (see [`Statement::cursor`]).
///
/// The cursor owns no engine borrow: each [`Cursor::next_batch`] acquires
/// the engine's shared lock, advances the underlying
/// [`mtengine::cursor::CursorState`] by one batch and releases the lock —
/// so long-lived cursors do not starve writers.
///
/// The cursor is pinned to the engine's mutation epoch at open
/// ([`mtengine::Engine::pin_cursor`]): rows committed by concurrent DML
/// after the open are never observed, and blocking plans materialize their
/// snapshot at open. A destructive rewrite (UPDATE/DELETE) of a table the
/// cursor is streaming invalidates it — the next fetch fails with
/// [`MtError::Snapshot`](crate::MtError).
pub struct Cursor {
    server: Arc<MtBase>,
    plan: Arc<Plan>,
    params: Vec<Value>,
    state: CursorState,
    columns: Vec<String>,
    batch_rows: usize,
    /// Buffered rows for the row-at-a-time interface.
    pending: std::vec::IntoIter<Row>,
    done: bool,
    peak_resident: usize,
    rows_fetched: u64,
}

impl Cursor {
    fn new(
        server: Arc<MtBase>,
        plan: Arc<Plan>,
        params: Vec<Value>,
        batch_rows: usize,
    ) -> Result<Self> {
        let columns = plan.schema().names();
        let mut state = CursorState::new();
        {
            // Pin under the open-time shared borrow: everything committed up
            // to here is visible, nothing after. Blocking plans materialize
            // inside this borrow, so they cannot interleave with writers.
            let engine = server.engine.read();
            engine.pin_cursor(&plan, &params, &mut state)?;
        }
        Ok(Cursor {
            server,
            plan,
            params,
            state,
            columns,
            batch_rows: batch_rows.max(1),
            pending: Vec::new().into_iter(),
            done: false,
            peak_resident: 0,
            rows_fetched: 0,
        })
    }

    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Fetch the next batch of rows; `None` when the cursor is exhausted.
    pub fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if self.done {
            return Ok(None);
        }
        let batch = {
            let engine = self.server.engine.read();
            engine.fetch_cursor_batch(&self.plan, &self.params, &mut self.state, self.batch_rows)?
        };
        self.done = batch.done;
        // Rows resident because of this cursor right now: the batch being
        // handed out plus whatever the state still buffers (zero when
        // streaming — that is the whole point).
        self.peak_resident = self
            .peak_resident
            .max(batch.rows.len() + self.state.buffered_rows());
        self.rows_fetched += batch.rows.len() as u64;
        if batch.rows.is_empty() && self.done {
            return Ok(None);
        }
        Ok(Some(batch.rows))
    }

    /// Fetch the next single row (refilling from batches internally);
    /// `None` when the cursor is exhausted.
    pub fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.pending.next() {
                return Ok(Some(row));
            }
            match self.next_batch()? {
                Some(rows) => self.pending = rows.into_iter(),
                None => return Ok(None),
            }
        }
    }

    /// Whether this cursor streams (never holds the full result). The plan
    /// shape fully determines the mode, so this is known before the first
    /// fetch; blocking plans (sorts, aggregates, joins) report `false`.
    pub fn is_streaming(&self) -> bool {
        self.state
            .is_streaming()
            .unwrap_or_else(|| plan_streams(&self.plan))
    }

    /// The maximum number of rows this cursor has held resident at once
    /// (batch in flight + internal buffer). For streaming cursors this is
    /// bounded by the batch size regardless of the result size.
    pub fn peak_resident_rows(&self) -> usize {
        self.peak_resident
    }

    /// Total rows handed out so far.
    pub fn rows_fetched(&self) -> u64 {
        self.rows_fetched
    }
}

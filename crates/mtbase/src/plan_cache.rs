//! Server-side LRU cache of prepared physical plans.
//!
//! The front-end work MTBase performs per statement — scope resolution,
//! privilege pruning (D → D'), the MT-to-SQL rewrite and physical planning —
//! depends only on the inputs captured in [`PlanCacheKey`]. Caching the
//! resulting plan under that key amortizes the whole front-end across
//! repeated executions: the hot path of a prepared statement is a hash
//! lookup plus [`mtengine::Engine::execute_plan`].
//!
//! Invalidation is wholesale, via the key's `epoch` component: every catalog
//! mutation (DDL, GRANT/REVOKE, tenant registration, view changes) bumps
//! [`mtcatalog::Catalog::epoch`], so plans derived under an older epoch can
//! never be served again — they age out of the LRU. `SET SCOPE` needs no
//! epoch: the scope changes the effective dataset `D'`, which is part of the
//! key itself.

use std::collections::HashMap;
use std::sync::Arc;

use mtcatalog::TenantId;
use mtengine::plan::Plan;
use mtrewrite::OptLevel;
use mtsql::ast::Query;

/// Default number of cached plans per server.
pub(crate) const PLAN_CACHE_CAPACITY: usize = 128;

/// Everything the rewrite + plan front-end depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PlanCacheKey {
    /// Normalized SQL: the canonical print of the parsed query, so
    /// whitespace/case variants of the same statement share one entry.
    pub sql: String,
    /// The client tenant `C` (conversions target its formats).
    pub client: TenantId,
    /// The effective dataset `D'` (scope ∩ read privileges), resolved at
    /// lookup time — `SET SCOPE` and privilege changes land here.
    pub dataset: Vec<TenantId>,
    /// The optimization level the rewrite ran at.
    pub level: OptLevel,
    /// The catalog schema/privilege epoch the plan was derived under.
    pub epoch: u64,
}

/// A cached front-end product: the rewritten query (for observability) and
/// the physical plan (for execution).
#[derive(Debug)]
pub(crate) struct CachedPlan {
    /// The rewritten plain-SQL query the plan was lowered from.
    pub rewritten: Query,
    /// The physical plan, shared between the cache and running statements.
    pub plan: Arc<Plan>,
}

/// A small least-recently-used map. Eviction scans for the minimum stamp —
/// linear, but the capacity is small (128) and eviction is off the hot path.
pub(crate) struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<PlanCacheKey, (Arc<CachedPlan>, u64)>,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Look up a plan, refreshing its recency on hit.
    pub(crate) fn get(&mut self, key: &PlanCacheKey) -> Option<Arc<CachedPlan>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(plan, stamp)| {
            *stamp = tick;
            Arc::clone(plan)
        })
    }

    /// Insert a plan, evicting the least-recently-used entry when full.
    pub(crate) fn insert(&mut self, key: PlanCacheKey, plan: Arc<CachedPlan>) {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (plan, self.tick));
    }

    /// Number of cached plans.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Drop every cached plan.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sql: &str, epoch: u64) -> PlanCacheKey {
        PlanCacheKey {
            sql: sql.to_string(),
            client: 1,
            dataset: vec![1, 2],
            level: OptLevel::O4,
            epoch,
        }
    }

    fn plan() -> Arc<CachedPlan> {
        let query = mtsql::parse_query("SELECT 1").unwrap();
        let engine = mtengine::Engine::new(mtengine::EngineConfig::default());
        let plan = engine.plan_query(&query).unwrap();
        Arc::new(CachedPlan {
            rewritten: query,
            plan: Arc::new(plan),
        })
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        cache.insert(key("a", 0), plan());
        cache.insert(key("b", 0), plan());
        assert!(cache.get(&key("a", 0)).is_some()); // refresh a
        cache.insert(key("c", 0), plan()); // evicts b
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("b", 0)).is_none());
        assert!(cache.get(&key("a", 0)).is_some());
        assert!(cache.get(&key("c", 0)).is_some());
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let mut cache = PlanCache::new(4);
        cache.insert(key("a", 0), plan());
        assert!(cache.get(&key("a", 1)).is_none(), "stale epoch must miss");
        assert!(cache.get(&key("a", 0)).is_some());
    }
}

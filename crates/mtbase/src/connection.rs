//! Client connections: carry the client tenant `C`, the current `SCOPE`
//! (dataset `D`) and execute MTSQL statements through the rewrite pipeline.

use std::sync::Arc;

use mtcatalog::{Privilege, TenantId, TTID_COLUMN};
use mtengine::stats::StatsSnapshot;
use mtengine::{LockTarget, ResultSet, Transaction, Value};
use mtrewrite::{OptLevel, Rewriter};
use mtsql::ast::{
    Comparability, Expr, GrantObject, Grantee, Insert, InsertSource, Query, ScopeSpec, Select,
    SelectItem, Statement, TableRef,
};
use parking_lot::RwLock;

use crate::error::{MtError, Result};
use crate::server::{unsupported, MtBase};

/// Mutable per-connection session state, shared between the connection and
/// the prepared [`crate::prepared::Statement`]s it hands out — so a
/// `SET SCOPE` or opt-level change on the connection is observed by every
/// statement prepared from it (the statement's next execution resolves a
/// different effective dataset and misses the plan cache, i.e. replans).
pub(crate) struct Session {
    pub(crate) scope: ScopeSpec,
    pub(crate) level: Option<OptLevel>,
}

/// A client connection to MTBase.
///
/// The client tenant `C` is fixed at connect time (derived from the
/// connection string in the paper); the dataset `D` is controlled with
/// `SET SCOPE = "..."` and defaults to `{C}`.
///
/// Repeated statements should use the prepared API —
/// [`Connection::prepare`] → [`crate::Statement::bind`] →
/// `execute`/`cursor` — which parses once and serves the scope-resolution /
/// rewrite / planning front-end from the server's plan cache on every
/// re-execution. [`Connection::execute`] and [`Connection::query`] remain as
/// thin one-shot wrappers over the same cached front-end.
pub struct Connection {
    server: Arc<MtBase>,
    client: TenantId,
    session: Arc<RwLock<Session>>,
    /// Engine-counter delta recorded around the last executed statement.
    last_stats: StatsSnapshot,
    /// The open multi-statement transaction, if a `BEGIN` is pending. The
    /// connection owns it; `COMMIT` runs the server's three-phase group
    /// commit, `ROLLBACK` (or dropping the connection, or a failed DML
    /// statement) undoes it.
    txn: Option<Transaction>,
}

impl Drop for Connection {
    fn drop(&mut self) {
        // A connection abandoned mid-transaction must not leave staged rows
        // or writer locks behind.
        if let Some(txn) = self.txn.take() {
            let owner = txn.id();
            self.server.engine.write().txn_rollback(txn);
            self.server.locks.release_all(owner);
        }
    }
}

impl Connection {
    pub(crate) fn new(server: Arc<MtBase>, client: TenantId) -> Self {
        Connection {
            server,
            client,
            session: Arc::new(RwLock::new(Session {
                scope: ScopeSpec::Simple(vec![client]),
                level: None,
            })),
            last_stats: StatsSnapshot::default(),
            txn: None,
        }
    }

    /// `true` while a `BEGIN` is open on this connection.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// The client tenant of this connection.
    pub fn client(&self) -> TenantId {
        self.client
    }

    /// The current scope specification.
    pub fn scope(&self) -> ScopeSpec {
        self.session.read().scope.clone()
    }

    /// Override the optimization level for this connection (defaults to the
    /// server-wide level). Prepared statements pick the change up on their
    /// next execution.
    pub fn set_opt_level(&mut self, level: OptLevel) {
        self.session.write().level = Some(level);
    }

    fn opt_level(&self) -> OptLevel {
        self.session
            .read()
            .level
            .unwrap_or_else(|| self.server.default_opt_level())
    }

    /// Scan counters (rows scanned, partitions scanned/pruned, UDF activity)
    /// attributable to the last statement this connection executed. The delta
    /// is taken over the shared engine counters, so interleaving statements
    /// from other connections inflate it.
    pub fn last_query_stats(&self) -> StatsSnapshot {
        self.last_stats
    }

    /// Parse and execute one MTSQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet> {
        let stmt = mtsql::parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Shorthand for executing a query and returning its rows.
    pub fn query(&mut self, sql: &str) -> Result<ResultSet> {
        self.execute(sql)
    }

    /// Prepare an MTSQL query for repeated execution: parse it once, count
    /// its `?` / `$n` parameter placeholders, and return a
    /// [`crate::Statement`] whose `bind` → `execute`/`cursor` lifecycle
    /// serves the scope-resolution / rewrite / planning front-end from the
    /// server's plan cache (see the crate docs for the full lifecycle).
    pub fn prepare(&self, sql: &str) -> Result<crate::Statement> {
        let stmt = mtsql::parse_statement(sql)?;
        let query = match stmt {
            Statement::Select(q) => q,
            _ => {
                return Err(unsupported(
                    "prepare expects a SELECT statement (DDL/DML execute one-shot)",
                ))
            }
        };
        Ok(crate::Statement::new(
            Arc::clone(&self.server),
            self.client,
            Arc::clone(&self.session),
            query,
        ))
    }

    /// Rewrite a query without executing it (useful to inspect what MTBase
    /// sends to the DBMS).
    pub fn rewrite_only(&mut self, sql: &str) -> Result<Query> {
        let query = mtsql::parse_query(sql)?;
        self.rewrite(&query)
    }

    /// The full rewrite pipeline for one query: resolve the effective dataset
    /// (scope ∩ read privileges on the referenced tables), then apply the
    /// MT-to-SQL rewrite at this connection's optimization level.
    fn rewrite(&self, query: &Query) -> Result<Query> {
        let dataset = self
            .server
            .effective_dataset_for_query(self.client, &self.scope(), query)?;
        let catalog = self.server.catalog.read();
        let rewriter =
            Rewriter::with_inline_registry(&catalog, self.server.inline_registry.read().clone());
        Ok(rewriter.rewrite_query(query, self.client, &dataset, self.opt_level())?)
    }

    /// Execute a parsed statement, recording the engine-counter delta as this
    /// connection's last-query scan statistics.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<ResultSet> {
        let before = self.server.stats();
        let result = self.execute_statement_inner(stmt);
        self.last_stats = self.server.stats().delta_from(&before);
        result
    }

    fn execute_statement_inner(&mut self, stmt: &Statement) -> Result<ResultSet> {
        self.server.check_env()?;
        match stmt {
            Statement::Begin => return self.begin_txn(),
            Statement::Commit => return self.commit_txn(),
            Statement::Rollback => return self.rollback_txn(),
            _ if self.txn.is_some() => return self.execute_in_txn(stmt),
            _ => {}
        }
        match stmt {
            Statement::SetScope(spec) => {
                self.session.write().scope = spec.clone();
                Ok(ResultSet::default())
            }
            Statement::Select(query) => self.execute_select(query),
            Statement::Explain(query) => self.execute_explain(query),
            Statement::Grant(grant) => {
                let dataset = self.resolve_dataset()?;
                let grantees: Vec<TenantId> = match grant.grantee {
                    Grantee::Tenant(t) => vec![t],
                    Grantee::All => dataset,
                };
                let tables = self.grant_object_tables(&grant.object);
                // Write-ahead: DCL records reach the WAL before the catalog
                // changes (engine lock released before taking catalog).
                {
                    let mut engine = self.server.engine.write();
                    if engine.is_durable() {
                        let mask = crate::server::encode_privileges(&grant.privileges);
                        for &grantee in &grantees {
                            engine
                                .log_meta(mtengine::MetaOp::RegisterTenant { tenant: grantee })?;
                            for table in &tables {
                                engine.log_meta(mtengine::MetaOp::Grant {
                                    owner: self.client,
                                    grantee,
                                    table: table.clone(),
                                    privileges: mask,
                                })?;
                            }
                        }
                    }
                }
                let mut catalog = self.server.catalog.write();
                for grantee in grantees {
                    catalog.register_tenant(grantee);
                    for table in &tables {
                        catalog.privileges_mut().grant(
                            self.client,
                            table,
                            grantee,
                            &grant.privileges,
                        );
                    }
                }
                Ok(ResultSet::default())
            }
            Statement::Revoke(revoke) => {
                let dataset = self.resolve_dataset()?;
                let grantees: Vec<TenantId> = match revoke.grantee {
                    Grantee::Tenant(t) => vec![t],
                    Grantee::All => dataset,
                };
                let tables = self.grant_object_tables(&revoke.object);
                {
                    let mut engine = self.server.engine.write();
                    if engine.is_durable() {
                        let mask = crate::server::encode_privileges(&revoke.privileges);
                        for &grantee in &grantees {
                            for table in &tables {
                                engine.log_meta(mtengine::MetaOp::Revoke {
                                    owner: self.client,
                                    grantee,
                                    table: table.clone(),
                                    privileges: mask,
                                })?;
                            }
                        }
                    }
                }
                let mut catalog = self.server.catalog.write();
                for grantee in grantees {
                    for table in &tables {
                        catalog.privileges_mut().revoke(
                            self.client,
                            table,
                            grantee,
                            &revoke.privileges,
                        );
                    }
                }
                Ok(ResultSet::default())
            }
            Statement::CreateTable(ct) => {
                self.server.create_table(ct)?;
                Ok(ResultSet::default())
            }
            Statement::DropTable { name, if_exists } => {
                // Engine first: the physical drop and its catalog record are
                // one WAL transaction. The catalog entry goes second, after
                // the transaction is durable (locks are never held together —
                // the plan-cache front-end acquires catalog → engine).
                let existed = {
                    let mut engine = self.server.engine.write();
                    let meta = engine
                        .is_durable()
                        .then(|| mtengine::MetaOp::DropTable { name: name.clone() });
                    engine.drop_table_logged(name, meta)?
                };
                if !existed && !if_exists {
                    return Err(MtError::Engine(format!("no such table `{name}`")));
                }
                self.server.catalog.write().drop_table(name);
                Ok(ResultSet::default())
            }
            Statement::CreateView(_) | Statement::DropView { .. } => {
                // View definitions live in the engine; bump the epoch
                // explicitly so cached plans that expanded the old view
                // invalidate.
                self.server.catalog.write().bump_epoch();
                let mut engine = self.server.engine.write();
                Ok(engine.execute_statement(stmt)?)
            }
            Statement::CreateFunction(cf) => {
                // The native implementation must already be registered via
                // `MtBase::register_conversion`; accept the DDL so SQL setup
                // scripts stay portable.
                if self.server.engine.read().udfs().contains(&cf.name) {
                    Ok(ResultSet::default())
                } else {
                    Err(unsupported(
                        "CREATE FUNCTION without a registered native implementation",
                    ))
                }
            }
            Statement::Insert(insert) => self.execute_insert(insert),
            Statement::Update(_) | Statement::Delete(_) => self.execute_update_delete(stmt),
            // Dispatched before this match; kept for exhaustiveness.
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(MtError::Other(
                "transaction control statements are dispatched before this match".to_string(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Multi-statement transactions (BEGIN / COMMIT / ROLLBACK)
    // ------------------------------------------------------------------

    fn begin_txn(&mut self) -> Result<ResultSet> {
        if self.txn.is_some() {
            return Err(MtError::Other(
                "a transaction is already open on this connection \
                 (nested BEGIN is not supported)"
                    .to_string(),
            ));
        }
        self.txn = Some(self.server.engine.write().begin_transaction());
        Ok(ResultSet::default())
    }

    fn commit_txn(&mut self) -> Result<ResultSet> {
        let txn = self.txn.take().ok_or_else(|| {
            MtError::Other("COMMIT without an open transaction (BEGIN first)".to_string())
        })?;
        self.server.finish_txn_commit(txn)?;
        Ok(ResultSet::default())
    }

    fn rollback_txn(&mut self) -> Result<ResultSet> {
        let txn = self.txn.take().ok_or_else(|| {
            MtError::Other("ROLLBACK without an open transaction (BEGIN first)".to_string())
        })?;
        let owner = txn.id();
        self.server.engine.write().txn_rollback(txn);
        self.server.locks.release_all(owner);
        Ok(ResultSet::default())
    }

    /// Route one statement executed while a transaction is open. Queries
    /// read at the transaction's snapshot (its own writes plus the
    /// committed floor — never another open transaction's staged rows);
    /// DML joins the transaction — staged for one WAL commit, undone
    /// together on rollback, with a failed DML statement rolling the whole
    /// transaction back (its locks are released, a later COMMIT reports no
    /// open transaction). DDL, DCL and `SET SCOPE` are rejected: they
    /// commit on their own and cannot be staged or rolled back here.
    fn execute_in_txn(&mut self, stmt: &Statement) -> Result<ResultSet> {
        match stmt {
            Statement::Select(query) => self.execute_select_txn(query),
            Statement::Explain(query) => self.execute_explain(query),
            Statement::Insert(insert) => self.execute_insert(insert),
            Statement::Update(_) | Statement::Delete(_) => self.execute_update_delete(stmt),
            _ => Err(unsupported(
                "DDL, DCL and SET SCOPE inside a transaction \
                 (these statements commit on their own — COMMIT or ROLLBACK first)",
            )),
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// One-shot query execution: a thin wrapper over the prepared front-end
    /// — resolve D', fetch (or build) the cached plan, execute it with no
    /// bound parameters. Re-running the same SQL under an unchanged scope
    /// and catalog epoch therefore skips rewrite and planning entirely.
    fn execute_select(&mut self, query: &Query) -> Result<ResultSet> {
        let (cached, _hit) = self.server.resolve_cached_plan(
            self.client,
            &self.scope(),
            self.opt_level(),
            &query.to_string(),
            query,
        )?;
        let engine = self.server.engine.read();
        Ok(engine.execute_plan(&cached.plan, &[])?)
    }

    /// In-transaction query execution: the same cached front-end, but the
    /// plan runs pinned to this connection's transaction — the committed
    /// floor plus the transaction's own statement epochs — so it observes
    /// its own staged writes but never another open transaction's.
    fn execute_select_txn(&mut self, query: &Query) -> Result<ResultSet> {
        let (cached, _hit) = self.server.resolve_cached_plan(
            self.client,
            &self.scope(),
            self.opt_level(),
            &query.to_string(),
            query,
        )?;
        let Some(txn) = self.txn.as_ref() else {
            return Err(MtError::Other(
                "in-transaction query without an open transaction".to_string(),
            ));
        };
        let engine = self.server.engine.read();
        Ok(engine.execute_plan_txn(&cached.plan, &[], txn)?)
    }

    /// `EXPLAIN <query>`: resolve the plan exactly like `execute_select`
    /// would (same scope, same optimization level, same plan cache), then
    /// render it instead of running it. A plan served from the prepared
    /// cache is marked `(cached)` on its first line, making reuse visible.
    fn execute_explain(&mut self, query: &Query) -> Result<ResultSet> {
        let (cached, hit) = self.server.resolve_cached_plan(
            self.client,
            &self.scope(),
            self.opt_level(),
            &query.to_string(),
            query,
        )?;
        let engine = self.server.engine.read();
        let mut rs = engine.explain_plan(&cached.plan);
        if hit {
            if let Some(first) = rs.rows.first_mut().and_then(|r| r.first_mut()) {
                let line = first.as_str().unwrap_or_default();
                *first = Value::str(format!("{line} (cached)"));
            }
        }
        Ok(rs)
    }

    /// Resolve the scope into `D` (evaluating complex scopes on the engine).
    fn resolve_dataset(&self) -> Result<Vec<TenantId>> {
        self.server.resolve_dataset(self.client, &self.scope())
    }

    fn grant_object_tables(&self, object: &GrantObject) -> Vec<String> {
        match object {
            GrantObject::Table(t) => vec![t.clone()],
            GrantObject::Database => self
                .server
                .catalog
                .read()
                .tables()
                .filter(|t| t.is_tenant_specific())
                .map(|t| t.name.clone())
                .collect(),
        }
    }

    // ------------------------------------------------------------------
    // DML (§2.5: applied to each tenant in D separately, constants and WHERE
    // interpreted with respect to C)
    // ------------------------------------------------------------------

    fn execute_insert(&mut self, insert: &Insert) -> Result<ResultSet> {
        let dataset = self.resolve_dataset()?;
        let table_meta = {
            let catalog = self.server.catalog.read();
            catalog
                .table(&insert.table)
                .cloned()
                .ok_or_else(|| MtError::Other(format!("unknown table `{}`", insert.table)))?
        };

        // Determine the source rows, presented in C's format. VALUES lists
        // are column-free expressions: one engine call evaluates them all.
        let source_rows: Vec<Vec<Value>> = match &insert.source {
            InsertSource::Values(rows) => self.server.engine.read().eval_values(rows)?,
            // Sub-queries of DML are interpreted exactly like queries — at
            // the transaction's snapshot inside one (read-your-writes).
            InsertSource::Query(q) if self.txn.is_some() => self.execute_select_txn(q)?.rows,
            InsertSource::Query(q) => self.execute_select(q)?.rows,
        };

        let column_names: Vec<String> = if insert.columns.is_empty() {
            table_meta.columns.iter().map(|c| c.name.clone()).collect()
        } else {
            insert.columns.clone()
        };

        let writable: Vec<TenantId> = dataset
            .iter()
            .copied()
            .filter(|d| {
                self.server.catalog.read().has_privilege(
                    *d,
                    &insert.table,
                    self.client,
                    Privilege::Insert,
                )
            })
            .collect();

        // Build every tenant's full-width rows (and the writer locks they
        // need) up front; nothing is applied until the locks are held. A
        // tenant-specific insert lands in tenant d's partition bucket, so
        // two tenants' inserts take different bucket locks and commit in
        // parallel; a global table's rows are unbucketed (loose).
        let target_columns = {
            let engine = self.server.engine.read();
            let table = engine.database().table(&insert.table)?;
            table.columns.clone()
        };
        let mut full_rows: Vec<Vec<Value>> = Vec::new();
        let mut targets: Vec<LockTarget> = Vec::new();
        for d in writable {
            if table_meta.is_tenant_specific() {
                targets.push(LockTarget::Bucket(d));
            } else if targets.is_empty() {
                targets.push(LockTarget::Loose);
            }
            for row in &source_rows {
                let mut converted = Vec::with_capacity(row.len());
                for (value, column) in row.iter().zip(&column_names) {
                    converted.push(self.convert_to_owner_format(
                        &table_meta.name,
                        column,
                        value.clone(),
                        d,
                    )?);
                }
                let mut physical_columns = column_names.clone();
                let mut physical_row = converted;
                if table_meta.is_tenant_specific() {
                    physical_columns.insert(0, TTID_COLUMN.to_string());
                    physical_row.insert(0, Value::Int(d));
                }
                // Build a full-width row in storage order.
                let mut full = vec![Value::Null; target_columns.len()];
                for (col, val) in physical_columns.iter().zip(physical_row) {
                    let idx = target_columns
                        .iter()
                        .position(|c| c.eq_ignore_ascii_case(col))
                        .ok_or_else(|| {
                            MtError::Other(format!("no column `{col}` in `{}`", insert.table))
                        })?;
                    full[idx] = val;
                }
                full_rows.push(full);
            }
        }
        let inserted = full_rows.len() as i64;
        if !full_rows.is_empty() {
            self.run_dml_in_txn(&insert.table, &targets, |engine, txn| {
                engine.txn_insert_rows(txn, &insert.table, full_rows)?;
                Ok(0)
            })?;
        }
        Ok(ResultSet {
            columns: vec!["rows_inserted".to_string()],
            rows: vec![vec![Value::Int(inserted)]],
        })
    }

    /// Run one DML statement's engine work under this connection's open
    /// transaction — or, when none is open, under an *implicit* transaction
    /// committed on the spot through the server's three-phase group commit
    /// (so a multi-row, multi-tenant statement costs at most one fsync, and
    /// concurrent statements share even that).
    ///
    /// The writer locks are acquired *before* the engine lock is taken —
    /// acquisition can block for seconds behind a conflicting transaction —
    /// and are held until the transaction resolves. Any error rolls the
    /// whole transaction back (the undo log restores every earlier
    /// statement) and releases its locks.
    fn run_dml_in_txn(
        &mut self,
        table: &str,
        targets: &[LockTarget],
        work: impl FnOnce(&mut mtengine::Engine, &mut Transaction) -> Result<i64>,
    ) -> Result<i64> {
        let (mut txn, implicit) = match self.txn.take() {
            Some(txn) => (txn, false),
            None => (self.server.engine.write().begin_transaction(), true),
        };
        let owner = txn.id();
        let applied = (|| {
            self.server.locks.acquire(owner, table, targets)?;
            work(&mut self.server.engine.write(), &mut txn)
        })();
        match applied {
            Ok(affected) => {
                if implicit {
                    self.server.finish_txn_commit(txn)?;
                } else {
                    self.txn = Some(txn);
                }
                Ok(affected)
            }
            Err(e) => {
                self.server.engine.write().txn_rollback(txn);
                self.server.locks.release_all(owner);
                Err(e)
            }
        }
    }

    fn execute_update_delete(&mut self, stmt: &Statement) -> Result<ResultSet> {
        let (table, selection, assignments) = match stmt {
            Statement::Update(u) => (
                u.table.clone(),
                u.selection.clone(),
                Some(u.assignments.clone()),
            ),
            Statement::Delete(d) => (d.table.clone(), d.selection.clone(), None),
            _ => {
                return Err(MtError::Other(
                    "execute_update_delete expects UPDATE or DELETE".to_string(),
                ))
            }
        };
        let is_update = assignments.is_some();
        let dataset = self.resolve_dataset()?;
        let needed = if is_update {
            Privilege::Update
        } else {
            Privilege::Delete
        };
        let table_meta = {
            let catalog = self.server.catalog.read();
            catalog
                .table(&table)
                .cloned()
                .ok_or_else(|| MtError::Other(format!("unknown table `{table}`")))?
        };

        // Build the per-tenant engine statements first; nothing is applied
        // until the whole-table lock below is held.
        let mut per_tenant: Vec<Statement> = Vec::new();
        for d in dataset {
            if !self
                .server
                .catalog
                .read()
                .has_privilege(d, &table, self.client, needed)
            {
                continue;
            }
            // Rewrite the WHERE clause with respect to C and dataset {d} by
            // piggy-backing on the query rewriter, then restrict to tenant d.
            let rewritten_selection = {
                let probe = Query::from_select(Select {
                    projection: vec![SelectItem::Wildcard],
                    from: vec![TableRef::table(&table)],
                    selection: selection.clone(),
                    ..Select::default()
                });
                let catalog = self.server.catalog.read();
                let rewriter = Rewriter::new(&catalog);
                rewriter
                    .rewrite_query(&probe, self.client, &[d], OptLevel::Canonical)?
                    .body
                    .selection
            };
            per_tenant.push(match &assignments {
                Some(assigns) => {
                    // Convert assignment values into tenant d's format by
                    // wrapping convertible targets in conversion calls; the
                    // engine evaluates them per row.
                    let assignments = assigns
                        .iter()
                        .map(|(col, value_expr)| {
                            let wrapped = self.wrap_assignment_for_owner(
                                &table_meta.name,
                                col,
                                value_expr.clone(),
                                d,
                            );
                            (col.clone(), wrapped)
                        })
                        .collect();
                    Statement::Update(mtsql::ast::Update {
                        table: table.clone(),
                        assignments,
                        selection: rewritten_selection,
                    })
                }
                None => Statement::Delete(mtsql::ast::Delete {
                    table: table.clone(),
                    selection: rewritten_selection,
                }),
            });
        }

        // UPDATE / DELETE rewrite the whole row set, so they take the
        // whole-table lock; every tenant's statement joins one transaction
        // (implicit when no BEGIN is open), so the multi-tenant statement
        // commits with at most one fsync.
        let affected = if per_tenant.is_empty() {
            0
        } else {
            self.run_dml_in_txn(&table, &[LockTarget::Whole], |engine, txn| {
                let mut affected = 0i64;
                for stmt in &per_tenant {
                    let rs = engine.txn_execute_statement(txn, stmt)?;
                    affected += rs.scalar().and_then(Value::as_i64).unwrap_or(0);
                }
                Ok(affected)
            })?
        };
        Ok(ResultSet {
            columns: vec![if is_update {
                "rows_updated"
            } else {
                "rows_deleted"
            }
            .to_string()],
            rows: vec![vec![Value::Int(affected)]],
        })
    }

    /// Wrap an UPDATE assignment expression (given in C's format) so that the
    /// stored value ends up in tenant `owner`'s format.
    fn wrap_assignment_for_owner(
        &self,
        table: &str,
        column: &str,
        value_expr: Expr,
        owner: TenantId,
    ) -> Expr {
        if owner == self.client {
            return value_expr;
        }
        let catalog = self.server.catalog.read();
        match catalog.comparability(table, column) {
            Some(Comparability::Convertible {
                to_universal,
                from_universal,
            }) => Expr::call(
                from_universal,
                vec![
                    Expr::call(to_universal, vec![value_expr, Expr::int(self.client)]),
                    Expr::int(owner),
                ],
            ),
            _ => value_expr,
        }
    }

    /// Convert a value given in C's format into tenant `owner`'s format, if
    /// the target column is convertible (§2.5).
    fn convert_to_owner_format(
        &self,
        table: &str,
        column: &str,
        value: Value,
        owner: TenantId,
    ) -> Result<Value> {
        if owner == self.client || value.is_null() {
            return Ok(value);
        }
        let conv = {
            let catalog = self.server.catalog.read();
            match catalog.comparability(table, column) {
                Some(Comparability::Convertible {
                    to_universal,
                    from_universal,
                }) => Some((to_universal.clone(), from_universal.clone())),
                _ => None,
            }
        };
        match conv {
            None => Ok(value),
            Some((to, from)) => {
                let engine = self.server.engine.read();
                let universal = engine.udfs().call(&to, &[value, Value::Int(self.client)])?;
                Ok(engine.udfs().call(&from, &[universal, Value::Int(owner)])?)
            }
        }
    }
}

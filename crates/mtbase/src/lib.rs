//! `mtbase` — the MTSQL middleware: connections carrying the client tenant
//! `C`, scope handling (dataset `D`), privilege pruning (`D → D'`), the
//! rewrite pipeline and execution on the [`mtengine`] substrate.
//!
//! This corresponds to the middleware box of Figure 4 in the paper: clients
//! speak MTSQL to a [`Connection`]; the connection consults the catalog,
//! rewrites the statement to plain SQL at a configurable optimization level
//! and runs it on the engine.
//!
//! # Public API
//!
//! * [`MtBase`] — the server: catalog + engine + conversion functions +
//!   the shared prepared-plan cache. Build one with [`MtBase::new`] (takes
//!   an [`EngineConfig`] controlling UDF caching, partition pruning,
//!   parallel and columnar scans) and open per-tenant connections with
//!   [`MtBase::connect`].
//! * [`Connection`] — executes MTSQL (`SET SCOPE`, queries, DML, DCL) at a
//!   per-connection [`OptLevel`];
//!   [`Connection::last_query_stats`](connection::Connection::last_query_stats)
//!   reports the engine-counter delta (rows scanned, partitions pruned,
//!   vectorized rows, UDF calls, plan-cache hits, ...) of the last statement.
//! * [`Statement`] / [`Cursor`] — the prepare / bind / execute / fetch
//!   lifecycle: [`Connection::prepare`] parses once, `bind` substitutes
//!   `?` / `$n` parameter values without replanning, `execute` serves the
//!   scope-resolution / rewrite / planning front-end from the server's plan
//!   cache, and [`Statement::cursor`](prepared::Statement::cursor) streams
//!   results batch-at-a-time. One-shot [`Connection::execute`] /
//!   [`Connection::query`] remain as thin wrappers over the same cached
//!   front-end.
//! * [`testkit`] — the paper's running example wired up for tests and docs.
//!
//! # Example
//!
//! ```
//! use mtbase::testkit::running_example_server;
//! use mtengine::Value;
//!
//! let server = running_example_server(mtengine::EngineConfig::default());
//! server.grant_read_all(0).unwrap(); // tenant 1 shares her data with tenant 0
//! let mut conn = server.connect(0);
//! conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
//! // Tenant 1 stores salaries in EUR; tenant 0 sees them converted to USD.
//! let mut stmt = conn
//!     .prepare("SELECT E_name, E_salary FROM Employees WHERE E_age > ?")
//!     .unwrap();
//! let rs = stmt.execute_with(&[Value::Int(50)]).unwrap();
//! assert_eq!(rs.rows.len(), 1);
//! assert_eq!(rs.rows[0][0], Value::str("Nancy"));
//! // Re-executing with a different binding reuses the cached plan.
//! let rs = stmt.execute_with(&[Value::Int(40)]).unwrap();
//! assert_eq!(rs.rows.len(), 3);
//! assert_eq!(stmt.last_query_stats().prepared_cache_hits, 1);
//! ```

pub mod connection;
pub mod error;
mod plan_cache;
pub mod prepared;
pub mod server;
pub mod testkit;

pub use connection::Connection;
pub use error::{MtError, Result};
pub use prepared::{Cursor, Statement};
pub use server::{currency_udfs_from_rates, phone_udfs_from_prefixes, MtBase};

pub use mtcatalog::TenantId;
pub use mtengine::{EngineConfig, ResultSet, Value};
pub use mtrewrite::OptLevel;

//! Benchmark parameters of MT-H (§5 of the paper): scale factor, number of
//! tenants and the tenant-share distribution.

use serde::{Deserialize, Serialize};

/// How records of the tenant-specific tables are distributed over tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantDistribution {
    /// Every tenant owns roughly the same number of records.
    Uniform,
    /// Tenant 1 owns the largest share, tenant T the smallest (Zipf, s = 1).
    Zipf,
}

/// MT-H benchmark configuration.
///
/// The paper's scale factor `sf` refers to TPC-H sizes (sf = 1 ≈ 6M lineitem
/// rows). This reproduction runs on an in-memory interpreter, so `scale = 1.0`
/// corresponds to a proportionally shrunken database (≈ 6,000 lineitem rows);
/// all *relative* sizes between tables match TPC-H. The substitution is
/// documented in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MthConfig {
    /// Scale factor (1.0 ≈ 6,000 lineitem rows).
    pub scale: f64,
    /// Number of tenants `T`; ttids range from 1 to T.
    pub tenants: i64,
    /// Tenant share distribution ρ.
    pub distribution: TenantDistribution,
    /// Seed for the deterministic data generator.
    pub seed: u64,
}

impl Default for MthConfig {
    fn default() -> Self {
        MthConfig {
            scale: 1.0,
            tenants: 10,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        }
    }
}

impl MthConfig {
    /// Scenario 1 of the paper: a business alliance of 10 small enterprises,
    /// uniform shares.
    pub fn scenario1(scale: f64) -> Self {
        MthConfig {
            scale,
            tenants: 10,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        }
    }

    /// Scenario 2 of the paper: a large medical-records database with many
    /// tenants of very different sizes (Zipf).
    pub fn scenario2(scale: f64, tenants: i64) -> Self {
        MthConfig {
            scale,
            tenants,
            distribution: TenantDistribution::Zipf,
            seed: 42,
        }
    }

    /// Base row counts at `scale = 1.0`, before tenant assignment.
    pub fn base_rows(&self) -> BaseRows {
        let s = self.scale.max(0.01);
        BaseRows {
            customers: ((150.0 * s) as usize).max(self.tenants as usize),
            orders_per_customer: 10,
            max_lineitems_per_order: 7,
            parts: ((200.0 * s) as usize).max(20),
            suppliers: ((10.0 * s) as usize).max(5),
            partsupp_per_part: 4,
        }
    }

    /// The share (fraction of records) owned by tenant `t` (1-based).
    pub fn tenant_share(&self, tenant: i64) -> f64 {
        assert!((1..=self.tenants).contains(&tenant));
        match self.distribution {
            TenantDistribution::Uniform => 1.0 / self.tenants as f64,
            TenantDistribution::Zipf => {
                let h: f64 = (1..=self.tenants).map(|k| 1.0 / k as f64).sum();
                (1.0 / tenant as f64) / h
            }
        }
    }

    /// Exchange rate of a tenant towards the universal currency (USD).
    /// Tenant 1 uses the universal format (`(1.0, 1.0)`), matching the paper's
    /// generator ("tenant 1 who gets the universal format for both").
    pub fn currency_rates(tenant: i64) -> (f64, f64) {
        if tenant <= 1 {
            return (1.0, 1.0);
        }
        let to = 0.5 + ((tenant % 13) as f64) * 0.125;
        (to, 1.0 / to)
    }

    /// Phone prefix of a tenant (tenant 1 gets the universal, prefix-less
    /// format).
    pub fn phone_prefix(tenant: i64) -> String {
        const PREFIXES: [&str; 5] = ["", "+", "00", "011", "990"];
        if tenant <= 1 {
            String::new()
        } else {
            PREFIXES[(tenant as usize) % PREFIXES.len()].to_string()
        }
    }
}

/// Base row counts derived from the configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseRows {
    pub customers: usize,
    pub orders_per_customer: usize,
    pub max_lineitems_per_order: usize,
    pub parts: usize,
    pub suppliers: usize,
    pub partsupp_per_part: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shares_sum_to_one() {
        let cfg = MthConfig::scenario1(1.0);
        let total: f64 = (1..=cfg.tenants).map(|t| cfg.tenant_share(t)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((cfg.tenant_share(1) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zipf_shares_decrease_and_sum_to_one() {
        let cfg = MthConfig::scenario2(1.0, 100);
        let total: f64 = (1..=cfg.tenants).map(|t| cfg.tenant_share(t)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(cfg.tenant_share(1) > cfg.tenant_share(2));
        assert!(cfg.tenant_share(2) > cfg.tenant_share(50));
    }

    #[test]
    fn tenant_one_uses_universal_formats() {
        assert_eq!(MthConfig::currency_rates(1), (1.0, 1.0));
        assert_eq!(MthConfig::phone_prefix(1), "");
        let (to, from) = MthConfig::currency_rates(7);
        assert!((to * from - 1.0).abs() < 1e-9);
        assert_ne!(MthConfig::phone_prefix(2), "");
    }

    #[test]
    fn base_rows_scale() {
        let small = MthConfig::scenario1(0.5).base_rows();
        let big = MthConfig::scenario1(2.0).base_rows();
        assert!(big.customers > small.customers);
        assert!(big.parts > small.parts);
    }
}

//! `mth` — the MT-H benchmark of the MTBase paper (§5): a TPC-H derivative for
//! cross-tenant query processing.
//!
//! The crate provides
//!
//! * a deterministic data generator ([`gen`]) producing both the shared-table
//!   MT database (per-tenant keys, owner-format values, invisible `ttid`) and
//!   a plain single-tenant baseline database,
//! * the MTSQL schema and loader ([`loader`]) wiring catalog, conversion
//!   functions (`currency`, `phone format`) and the `Tenant` meta table,
//! * the 22 MT-H queries ([`queries`]),
//! * the result-validation harness of §5 ([`validate`]), and
//! * a small measurement helper ([`measure`]) used by the benchmark binaries.
//!
//! # Example
//!
//! ```
//! use mth::{loader, params::MthConfig, queries, validate};
//! use mtbase::EngineConfig;
//! use mtrewrite::OptLevel;
//!
//! let dep = loader::load(
//!     MthConfig { scale: 0.05, tenants: 2, ..MthConfig::default() },
//!     EngineConfig::postgres_like(),
//! );
//! let rs = validate::run_mt_query(&dep, 6, OptLevel::O4).unwrap();
//! assert_eq!(rs.columns, vec!["revenue"]);
//! ```

pub mod gen;
pub mod loader;
pub mod measure;
pub mod params;
pub mod queries;
pub mod validate;

pub use loader::{load, MthDeployment};
pub use params::{MthConfig, TenantDistribution};

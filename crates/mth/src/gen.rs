//! Deterministic MT-H data generator.
//!
//! Produces two consistent images of the same logical data:
//!
//! * the **MT database** (shared-table / basic layout): tenant-specific tables
//!   carry the invisible `ttid` column, keys are numbered per tenant, and
//!   convertible values (`c_acctbal`, `o_totalprice`, `l_extendedprice`,
//!   `c_phone`) are stored in the owning tenant's format;
//! * the **baseline database**: the classic single-tenant TPC-H layout with
//!   globalised keys and all values in universal format, used as the plain
//!   TPC-H comparison point of the paper's tables and figures.

use std::collections::HashMap;

use mtengine::table::Row;
use mtengine::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::params::{MthConfig, TenantDistribution};

/// Column order of each generated table (without the ttid meta column; the
/// loader prepends `ttid` for tenant-specific tables of the MT database).
pub mod columns {
    pub const REGION: &[&str] = &["r_regionkey", "r_name", "r_comment"];
    pub const NATION: &[&str] = &["n_nationkey", "n_name", "n_regionkey", "n_comment"];
    pub const SUPPLIER: &[&str] = &[
        "s_suppkey",
        "s_name",
        "s_address",
        "s_nationkey",
        "s_phone",
        "s_acctbal",
        "s_comment",
    ];
    pub const PART: &[&str] = &[
        "p_partkey",
        "p_name",
        "p_mfgr",
        "p_brand",
        "p_type",
        "p_size",
        "p_container",
        "p_retailprice",
        "p_comment",
    ];
    pub const PARTSUPP: &[&str] = &[
        "ps_partkey",
        "ps_suppkey",
        "ps_availqty",
        "ps_supplycost",
        "ps_comment",
    ];
    pub const CUSTOMER: &[&str] = &[
        "c_custkey",
        "c_name",
        "c_address",
        "c_nationkey",
        "c_phone",
        "c_acctbal",
        "c_mktsegment",
        "c_comment",
    ];
    pub const ORDERS: &[&str] = &[
        "o_orderkey",
        "o_custkey",
        "o_orderstatus",
        "o_totalprice",
        "o_orderdate",
        "o_orderpriority",
        "o_clerk",
        "o_shippriority",
        "o_comment",
    ];
    pub const LINEITEM: &[&str] = &[
        "l_orderkey",
        "l_partkey",
        "l_suppkey",
        "l_linenumber",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_returnflag",
        "l_linestatus",
        "l_shipdate",
        "l_commitdate",
        "l_receiptdate",
        "l_shipinstruct",
        "l_shipmode",
        "l_comment",
    ];
}

/// Offset used to globalise per-tenant keys in the baseline database.
pub const GLOBAL_KEY_OFFSET: i64 = 1_000_000;

/// The generated data: per-table rows for the MT and the baseline database.
#[derive(Debug, Default)]
pub struct GeneratedData {
    /// MT database rows (tenant-specific tables include the leading ttid).
    pub mt: HashMap<String, Vec<Row>>,
    /// Baseline (plain TPC-H style) rows.
    pub baseline: HashMap<String, Vec<Row>>,
    /// Number of customers per tenant (1-based index 0 unused).
    pub customers_per_tenant: Vec<usize>,
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const SHIPINSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const CONTAINERS: [&str; 8] = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "JUMBO PKG",
    "WRAP JAR",
];
const TYPE_SYLL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYLL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYLL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const PART_NAMES: [&str; 10] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "blanched",
    "blue",
    "blush",
    "brown",
];
const COMMENT_WORDS: [&str; 12] = [
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "ironic",
    "final",
    "pending",
    "regular",
    "express",
    "special",
    "deposits",
];

fn date(y: i32, m: u32, d: u32) -> i32 {
    mtengine::value::days_from_civil(y, m, d)
}

fn comment(rng: &mut StdRng) -> String {
    let a = COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())];
    let b = COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())];
    let c = COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())];
    format!("{a} {b} {c}")
}

fn universal_phone(rng: &mut StdRng, nationkey: i64) -> String {
    format!(
        "{:02}-{:03}-{:03}-{:04}",
        10 + nationkey,
        rng.gen_range(100..999),
        rng.gen_range(100..999),
        rng.gen_range(1000..9999)
    )
}

fn money(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    (rng.gen_range(lo..hi) * 100.0).round() / 100.0
}

/// Generate the MT-H dataset for the given configuration.
pub fn generate(cfg: &MthConfig) -> GeneratedData {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let base = cfg.base_rows();
    let mut data = GeneratedData::default();

    // ------------------------------------------------------------------
    // Global tables (identical in both databases).
    // ------------------------------------------------------------------
    let region: Vec<Row> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                Value::Int(i as i64),
                Value::str(*name),
                Value::str(format!("region {name}")),
            ]
        })
        .collect();
    let nation: Vec<Row> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            vec![
                Value::Int(i as i64),
                Value::str(*name),
                Value::Int(*region),
                Value::str(format!("nation {name}")),
            ]
        })
        .collect();

    let mut supplier = Vec::with_capacity(base.suppliers);
    for s in 1..=base.suppliers as i64 {
        let nationkey = rng.gen_range(0..25);
        let complaint = rng.gen_bool(0.1);
        supplier.push(vec![
            Value::Int(s),
            Value::str(format!("Supplier#{s:09}")),
            Value::str(format!("address {s}")),
            Value::Int(nationkey),
            Value::str(universal_phone(&mut rng, nationkey)),
            Value::Float(money(&mut rng, -999.0, 9999.0)),
            Value::str(if complaint {
                "Customer notes Complaints about delivery".to_string()
            } else {
                comment(&mut rng)
            }),
        ]);
    }

    let mut part = Vec::with_capacity(base.parts);
    for p in 1..=base.parts as i64 {
        let name = format!(
            "{} {}",
            PART_NAMES[rng.gen_range(0..PART_NAMES.len())],
            PART_NAMES[rng.gen_range(0..PART_NAMES.len())]
        );
        let brand = format!("Brand#{}{}", rng.gen_range(1..6), rng.gen_range(1..6));
        let p_type = format!(
            "{} {} {}",
            TYPE_SYLL1[rng.gen_range(0..TYPE_SYLL1.len())],
            TYPE_SYLL2[rng.gen_range(0..TYPE_SYLL2.len())],
            TYPE_SYLL3[rng.gen_range(0..TYPE_SYLL3.len())]
        );
        part.push(vec![
            Value::Int(p),
            Value::str(name),
            Value::str(format!("Manufacturer#{}", rng.gen_range(1..6))),
            Value::str(brand),
            Value::str(p_type),
            Value::Int(rng.gen_range(1..51)),
            Value::str(CONTAINERS[rng.gen_range(0..CONTAINERS.len())]),
            Value::Float(900.0 + (p % 100) as f64 + 0.01 * (p % 1000) as f64),
            Value::str(comment(&mut rng)),
        ]);
    }

    let mut partsupp = Vec::new();
    for p in 1..=base.parts as i64 {
        for k in 0..base.partsupp_per_part as i64 {
            let suppkey = ((p + k * 7) % base.suppliers as i64) + 1;
            partsupp.push(vec![
                Value::Int(p),
                Value::Int(suppkey),
                Value::Int(rng.gen_range(1..10_000)),
                Value::Float(money(&mut rng, 1.0, 1000.0)),
                Value::str(comment(&mut rng)),
            ]);
        }
    }

    for (name, rows) in [
        ("region", region),
        ("nation", nation),
        ("supplier", supplier),
        ("part", part),
        ("partsupp", partsupp),
    ] {
        data.mt.insert(name.to_string(), rows.clone());
        data.baseline.insert(name.to_string(), rows);
    }

    // ------------------------------------------------------------------
    // Tenant-specific tables.
    // ------------------------------------------------------------------
    let mut customers_per_tenant = vec![0usize; (cfg.tenants + 1) as usize];
    let mut remaining = base.customers;
    for t in 1..=cfg.tenants {
        let share = cfg.tenant_share(t);
        let mut count = match cfg.distribution {
            TenantDistribution::Uniform => (base.customers as f64 * share).round() as usize,
            TenantDistribution::Zipf => (base.customers as f64 * share).ceil() as usize,
        };
        count = count.max(1).min(remaining.max(1));
        if t == cfg.tenants {
            count = count.max(remaining);
        }
        remaining = remaining.saturating_sub(count);
        customers_per_tenant[t as usize] = count;
    }

    let mut mt_customer = Vec::new();
    let mut mt_orders = Vec::new();
    let mut mt_lineitem = Vec::new();
    let mut base_customer = Vec::new();
    let mut base_orders = Vec::new();
    let mut base_lineitem = Vec::new();

    for t in 1..=cfg.tenants {
        let (to_rate, from_rate) = MthConfig::currency_rates(t);
        let _ = to_rate;
        let prefix = MthConfig::phone_prefix(t);
        let n_customers = customers_per_tenant[t as usize];
        let mut order_seq: i64 = 0;
        for c in 1..=n_customers as i64 {
            let nationkey = rng.gen_range(0..25);
            let acctbal_universal = money(&mut rng, -999.0, 9999.0);
            let phone_universal = universal_phone(&mut rng, nationkey);
            let segment = SEGMENTS[rng.gen_range(0..SEGMENTS.len())];
            let c_comment = comment(&mut rng);
            let global_custkey = t * GLOBAL_KEY_OFFSET + c;

            mt_customer.push(vec![
                Value::Int(t),
                Value::Int(c),
                Value::str(format!("Customer#{t:03}-{c:06}")),
                Value::str(format!("address {c}")),
                Value::Int(nationkey),
                Value::str(format!("{prefix}{phone_universal}")),
                Value::Float((acctbal_universal * from_rate * 100.0).round() / 100.0),
                Value::str(segment),
                Value::str(c_comment.clone()),
            ]);
            base_customer.push(vec![
                Value::Int(global_custkey),
                Value::str(format!("Customer#{t:03}-{c:06}")),
                Value::str(format!("address {c}")),
                Value::Int(nationkey),
                Value::str(phone_universal),
                Value::Float(acctbal_universal),
                Value::str(segment),
                Value::str(c_comment),
            ]);

            let n_orders =
                rng.gen_range((base.orders_per_customer / 2).max(1)..=base.orders_per_customer + 3);
            for _ in 0..n_orders {
                order_seq += 1;
                let orderkey = order_seq;
                let global_orderkey = t * GLOBAL_KEY_OFFSET + orderkey;
                let orderdate =
                    date(1992, 1, 1) + rng.gen_range(0..(date(1998, 8, 2) - date(1992, 1, 1)));
                let priority = PRIORITIES[rng.gen_range(0..PRIORITIES.len())];
                let special = rng.gen_bool(0.05);
                let o_comment = if special {
                    "special requests pending deposits".to_string()
                } else {
                    comment(&mut rng)
                };

                let n_lines = rng.gen_range(1..=base.max_lineitems_per_order);
                let mut total_universal = 0.0;
                let mut any_open = false;
                for line in 1..=n_lines as i64 {
                    let partkey = rng.gen_range(1..=base.parts as i64);
                    let suppkey = ((partkey + (line - 1) * 7) % base.suppliers as i64) + 1;
                    let quantity = rng.gen_range(1..=50) as f64;
                    let extended_universal =
                        (quantity * (900.0 + (partkey % 100) as f64) * 100.0).round() / 100.0;
                    let discount = (rng.gen_range(0..=10) as f64) / 100.0;
                    let tax = (rng.gen_range(0..=8) as f64) / 100.0;
                    let shipdate = orderdate + rng.gen_range(1..=121);
                    let commitdate = orderdate + rng.gen_range(30..=90);
                    let receiptdate = shipdate + rng.gen_range(1..=30);
                    let current = date(1995, 6, 17);
                    let returnflag = if receiptdate <= current {
                        if rng.gen_bool(0.5) {
                            "R"
                        } else {
                            "A"
                        }
                    } else {
                        "N"
                    };
                    let linestatus = if shipdate > current {
                        any_open = true;
                        "O"
                    } else {
                        "F"
                    };
                    total_universal += extended_universal * (1.0 + tax) * (1.0 - discount);

                    let common_tail = (
                        Value::Float(discount),
                        Value::Float(tax),
                        Value::str(returnflag),
                        Value::str(linestatus),
                        Value::Date(shipdate),
                        Value::Date(commitdate),
                        Value::Date(receiptdate),
                        Value::str(SHIPINSTRUCT[rng.gen_range(0..SHIPINSTRUCT.len())]),
                        Value::str(SHIPMODES[rng.gen_range(0..SHIPMODES.len())]),
                        Value::str(comment(&mut rng)),
                    );
                    mt_lineitem.push(vec![
                        Value::Int(t),
                        Value::Int(orderkey),
                        Value::Int(partkey),
                        Value::Int(suppkey),
                        Value::Int(line),
                        Value::Float(quantity),
                        Value::Float((extended_universal * from_rate * 100.0).round() / 100.0),
                        common_tail.0.clone(),
                        common_tail.1.clone(),
                        common_tail.2.clone(),
                        common_tail.3.clone(),
                        common_tail.4.clone(),
                        common_tail.5.clone(),
                        common_tail.6.clone(),
                        common_tail.7.clone(),
                        common_tail.8.clone(),
                        common_tail.9.clone(),
                    ]);
                    base_lineitem.push(vec![
                        Value::Int(global_orderkey),
                        Value::Int(partkey),
                        Value::Int(suppkey),
                        Value::Int(line),
                        Value::Float(quantity),
                        Value::Float(extended_universal),
                        common_tail.0,
                        common_tail.1,
                        common_tail.2,
                        common_tail.3,
                        common_tail.4,
                        common_tail.5,
                        common_tail.6,
                        common_tail.7,
                        common_tail.8,
                        common_tail.9,
                    ]);
                }
                let orderstatus = if any_open { "O" } else { "F" };
                let total_universal = (total_universal * 100.0).round() / 100.0;
                mt_orders.push(vec![
                    Value::Int(t),
                    Value::Int(orderkey),
                    Value::Int(c),
                    Value::str(orderstatus),
                    Value::Float((total_universal * from_rate * 100.0).round() / 100.0),
                    Value::Date(orderdate),
                    Value::str(priority),
                    Value::str(format!("Clerk#{:09}", rng.gen_range(1..1000))),
                    Value::Int(0),
                    Value::str(o_comment.clone()),
                ]);
                base_orders.push(vec![
                    Value::Int(global_orderkey),
                    Value::Int(global_custkey),
                    Value::str(orderstatus),
                    Value::Float(total_universal),
                    Value::Date(orderdate),
                    Value::str(priority),
                    Value::str(format!("Clerk#{:09}", rng.gen_range(1..1000))),
                    Value::Int(0),
                    Value::str(o_comment),
                ]);
            }
        }
    }

    data.mt.insert("customer".into(), mt_customer);
    data.mt.insert("orders".into(), mt_orders);
    data.mt.insert("lineitem".into(), mt_lineitem);
    data.baseline.insert("customer".into(), base_customer);
    data.baseline.insert("orders".into(), base_orders);
    data.baseline.insert("lineitem".into(), base_lineitem);
    data.customers_per_tenant = customers_per_tenant;
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = MthConfig::scenario1(0.2);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.mt["lineitem"].len(), b.mt["lineitem"].len());
        assert_eq!(a.mt["lineitem"][0], b.mt["lineitem"][0]);
    }

    #[test]
    fn baseline_and_mt_have_equal_cardinalities() {
        let cfg = MthConfig::scenario1(0.2);
        let data = generate(&cfg);
        for table in ["customer", "orders", "lineitem"] {
            assert_eq!(data.mt[table].len(), data.baseline[table].len(), "{table}");
        }
        assert_eq!(data.mt["region"].len(), 5);
        assert_eq!(data.mt["nation"].len(), 25);
    }

    #[test]
    fn every_tenant_owns_some_customers() {
        let cfg = MthConfig::scenario1(0.2);
        let data = generate(&cfg);
        for t in 1..=cfg.tenants {
            assert!(
                data.customers_per_tenant[t as usize] > 0,
                "tenant {t} owns no customers"
            );
        }
    }

    #[test]
    fn zipf_gives_tenant_one_the_biggest_share() {
        let cfg = MthConfig::scenario2(0.3, 8);
        let data = generate(&cfg);
        let first = data.customers_per_tenant[1];
        let last = data.customers_per_tenant[cfg.tenants as usize];
        assert!(first >= last);
    }

    #[test]
    fn convertible_values_are_stored_in_owner_format() {
        let cfg = MthConfig::scenario1(0.2);
        let data = generate(&cfg);
        // For some tenant t > 1, the stored extendedprice differs from the
        // baseline universal value by the tenant's rate.
        let (_, from_rate) = MthConfig::currency_rates(2);
        assert!((from_rate - 1.0).abs() > 1e-9);
        let mt_row = data.mt["lineitem"]
            .iter()
            .find(|r| r[0] == Value::Int(2))
            .expect("tenant 2 has lineitems");
        // The universal value reconstructed from the stored one matches the
        // baseline magnitude range.
        let stored = mt_row[6].as_f64().unwrap();
        assert!(stored > 0.0);
    }

    #[test]
    fn foreign_keys_are_local_per_tenant() {
        let cfg = MthConfig::scenario1(0.2);
        let data = generate(&cfg);
        // every order's custkey exists among its tenant's customers
        for order in &data.mt["orders"] {
            let t = order[0].as_i64().unwrap();
            let custkey = order[2].as_i64().unwrap();
            assert!(
                custkey >= 1 && custkey <= data.customers_per_tenant[t as usize] as i64,
                "order references custkey {custkey} outside tenant {t}"
            );
        }
    }
}

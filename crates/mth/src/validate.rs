//! Query validation (§5): running an MT-H query with `C = 1` and
//! `D = {1, …, T}` must produce the same result as plain TPC-H on the merged
//! dataset, because tenant 1 uses the universal format for every convertible
//! attribute.
//!
//! Queries whose output contains tenant-local key values (`o_orderkey`,
//! `c_custkey`, …) are excluded, exactly as the paper excludes queries whose
//! order-to-customer mapping differs, and defines the canonical rewrite as
//! the gold standard for them instead.

use mtengine::{ResultSet, Value};
use mtrewrite::OptLevel;

use crate::loader::MthDeployment;
use crate::queries;

/// Queries whose result sets are directly comparable between MT-H (C = 1,
/// D = all) and the single-tenant baseline.
pub const VALIDATABLE: [usize; 10] = [1, 4, 5, 6, 11, 12, 13, 14, 16, 19];

/// Result of validating one query.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    pub query: usize,
    pub level: OptLevel,
    pub passed: bool,
    pub detail: String,
}

/// Execute query `n` through MTBase as client 1 over all tenants at the given
/// optimization level.
pub fn run_mt_query(dep: &MthDeployment, n: usize, level: OptLevel) -> mtbase::Result<ResultSet> {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(level);
    conn.execute("SET SCOPE = \"IN ()\"")?;
    conn.query(&queries::query(n))
}

/// Execute query `n` directly on the single-tenant baseline database.
pub fn run_baseline_query(dep: &MthDeployment, n: usize) -> mtengine::Result<ResultSet> {
    dep.baseline.query(&queries::query(n))
}

/// Validate the listed queries at one optimization level.
pub fn validate(
    dep: &MthDeployment,
    query_numbers: &[usize],
    level: OptLevel,
) -> Vec<ValidationReport> {
    query_numbers
        .iter()
        .map(|&n| {
            let mt = run_mt_query(dep, n, level);
            let base = run_baseline_query(dep, n);
            match (mt, base) {
                (Ok(mt), Ok(base)) => match compare_result_sets(&mt, &base) {
                    Ok(()) => ValidationReport {
                        query: n,
                        level,
                        passed: true,
                        detail: format!("{} rows match", mt.rows.len()),
                    },
                    Err(detail) => ValidationReport {
                        query: n,
                        level,
                        passed: false,
                        detail,
                    },
                },
                (Err(e), _) => ValidationReport {
                    query: n,
                    level,
                    passed: false,
                    detail: format!("MT-H execution failed: {e}"),
                },
                (_, Err(e)) => ValidationReport {
                    query: n,
                    level,
                    passed: false,
                    detail: format!("baseline execution failed: {e}"),
                },
            }
        })
        .collect()
}

/// Compare two result sets with a numeric tolerance (conversion round-trips
/// introduce sub-cent rounding noise) and order-insensitively.
pub fn compare_result_sets(a: &ResultSet, b: &ResultSet) -> Result<(), String> {
    if a.rows.len() != b.rows.len() {
        return Err(format!(
            "row count mismatch: {} vs {}",
            a.rows.len(),
            b.rows.len()
        ));
    }
    let mut a_rows = a.rows.clone();
    let mut b_rows = b.rows.clone();
    let key = |row: &Vec<Value>| {
        row.iter()
            .map(|v| match v {
                Value::Float(f) => format!("{:.2}", f),
                other => other.to_string(),
            })
            .collect::<Vec<_>>()
            .join("|")
    };
    a_rows.sort_by_key(key);
    b_rows.sort_by_key(key);
    for (ra, rb) in a_rows.iter().zip(&b_rows) {
        if ra.len() != rb.len() {
            return Err("column count mismatch".to_string());
        }
        for (va, vb) in ra.iter().zip(rb) {
            if !values_close(va, vb) {
                return Err(format!("value mismatch: {va} vs {vb}"));
            }
        }
    }
    Ok(())
}

fn values_close(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-4 * scale + 1e-6
        }
        _ => a == b || a.to_string() == b.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_close_tolerates_rounding() {
        assert!(values_close(&Value::Float(100.0), &Value::Float(100.0001)));
        assert!(!values_close(&Value::Float(100.0), &Value::Float(101.0)));
        assert!(values_close(&Value::str("x"), &Value::str("x")));
        assert!(values_close(&Value::Int(3), &Value::Float(3.0)));
    }

    #[test]
    fn compare_detects_row_count_mismatch() {
        let a = ResultSet {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(1)]],
        };
        let b = ResultSet {
            columns: vec!["x".into()],
            rows: vec![],
        };
        assert!(compare_result_sets(&a, &b).is_err());
    }
}

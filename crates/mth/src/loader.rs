//! Build a fully-wired MT-H deployment: MTSQL schema + catalog, conversion
//! functions, tenant metadata, the MT (shared-table) database and the plain
//! TPC-H baseline database used as the single-tenant comparison point.
//!
//! Tenant-specific tables (`customer`, `orders`, `lineitem`) are declared
//! with `ttid` as their partition key at load time (via the `CREATE TABLE ...
//! SPECIFIC` path of [`MtBase::create_table`]), so the engine buckets their
//! rows per tenant while loading and scoped queries prune foreign tenants at
//! scan time.

use std::sync::Arc;

use mtbase::{currency_udfs_from_rates, phone_udfs_from_prefixes, EngineConfig, MtBase, TenantId};
use mtcatalog::ConversionProfile;
use mtengine::{Engine, Value};
use mtrewrite::InlineSpec;
use mtsql::ast::Statement;

use crate::gen::{self, columns, GeneratedData};
use crate::params::MthConfig;

/// A loaded MT-H deployment.
pub struct MthDeployment {
    /// The MTBase middleware on top of the shared-table database.
    pub server: Arc<MtBase>,
    /// A plain single-tenant TPC-H database (globalised keys, universal
    /// formats) used as the "TPC-H" rows of the paper's tables and figures.
    pub baseline: Engine,
    /// The benchmark configuration used to generate the data.
    pub config: MthConfig,
}

/// MTSQL DDL of the MT-H schema (§5): `nation`, `region`, `supplier`, `part`
/// and `partsupp` are global; `customer`, `orders` and `lineitem` are
/// tenant-specific with convertible monetary / phone attributes.
pub const MTH_DDL: &[&str] = &[
    "CREATE TABLE region GLOBAL (
        r_regionkey INTEGER NOT NULL,
        r_name VARCHAR(25) NOT NULL,
        r_comment VARCHAR(152))",
    "CREATE TABLE nation GLOBAL (
        n_nationkey INTEGER NOT NULL,
        n_name VARCHAR(25) NOT NULL,
        n_regionkey INTEGER NOT NULL,
        n_comment VARCHAR(152))",
    "CREATE TABLE supplier GLOBAL (
        s_suppkey INTEGER NOT NULL,
        s_name VARCHAR(25) NOT NULL,
        s_address VARCHAR(40) NOT NULL,
        s_nationkey INTEGER NOT NULL,
        s_phone VARCHAR(15) NOT NULL,
        s_acctbal DECIMAL(15,2) NOT NULL,
        s_comment VARCHAR(101) NOT NULL)",
    "CREATE TABLE part GLOBAL (
        p_partkey INTEGER NOT NULL,
        p_name VARCHAR(55) NOT NULL,
        p_mfgr VARCHAR(25) NOT NULL,
        p_brand VARCHAR(10) NOT NULL,
        p_type VARCHAR(25) NOT NULL,
        p_size INTEGER NOT NULL,
        p_container VARCHAR(10) NOT NULL,
        p_retailprice DECIMAL(15,2) NOT NULL,
        p_comment VARCHAR(23) NOT NULL)",
    "CREATE TABLE partsupp GLOBAL (
        ps_partkey INTEGER NOT NULL,
        ps_suppkey INTEGER NOT NULL,
        ps_availqty INTEGER NOT NULL,
        ps_supplycost DECIMAL(15,2) NOT NULL,
        ps_comment VARCHAR(199) NOT NULL)",
    "CREATE TABLE customer SPECIFIC (
        c_custkey INTEGER NOT NULL SPECIFIC,
        c_name VARCHAR(25) NOT NULL COMPARABLE,
        c_address VARCHAR(40) NOT NULL COMPARABLE,
        c_nationkey INTEGER NOT NULL COMPARABLE,
        c_phone VARCHAR(15) NOT NULL CONVERTIBLE @phoneToUniversal @phoneFromUniversal,
        c_acctbal DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
        c_mktsegment VARCHAR(10) NOT NULL COMPARABLE,
        c_comment VARCHAR(117) NOT NULL COMPARABLE)",
    "CREATE TABLE orders SPECIFIC (
        o_orderkey INTEGER NOT NULL SPECIFIC,
        o_custkey INTEGER NOT NULL SPECIFIC,
        o_orderstatus VARCHAR(1) NOT NULL COMPARABLE,
        o_totalprice DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
        o_orderdate DATE NOT NULL COMPARABLE,
        o_orderpriority VARCHAR(15) NOT NULL COMPARABLE,
        o_clerk VARCHAR(15) NOT NULL COMPARABLE,
        o_shippriority INTEGER NOT NULL COMPARABLE,
        o_comment VARCHAR(79) NOT NULL COMPARABLE)",
    "CREATE TABLE lineitem SPECIFIC (
        l_orderkey INTEGER NOT NULL SPECIFIC,
        l_partkey INTEGER NOT NULL COMPARABLE,
        l_suppkey INTEGER NOT NULL COMPARABLE,
        l_linenumber INTEGER NOT NULL COMPARABLE,
        l_quantity DECIMAL(15,2) NOT NULL COMPARABLE,
        l_extendedprice DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
        l_discount DECIMAL(15,2) NOT NULL COMPARABLE,
        l_tax DECIMAL(15,2) NOT NULL COMPARABLE,
        l_returnflag VARCHAR(1) NOT NULL COMPARABLE,
        l_linestatus VARCHAR(1) NOT NULL COMPARABLE,
        l_shipdate DATE NOT NULL COMPARABLE,
        l_commitdate DATE NOT NULL COMPARABLE,
        l_receiptdate DATE NOT NULL COMPARABLE,
        l_shipinstruct VARCHAR(25) NOT NULL COMPARABLE,
        l_shipmode VARCHAR(10) NOT NULL COMPARABLE,
        l_comment VARCHAR(44) NOT NULL COMPARABLE)",
];

/// Generate the data and load a full deployment.
pub fn load(config: MthConfig, engine_config: EngineConfig) -> MthDeployment {
    let data = gen::generate(&config);
    load_from_data(config, engine_config, &data)
}

/// Load a deployment from pre-generated data (lets callers reuse one
/// generation run across several engine configurations).
pub fn load_from_data(
    config: MthConfig,
    engine_config: EngineConfig,
    data: &GeneratedData,
) -> MthDeployment {
    load_into(MtBase::new(engine_config), config, data)
}

/// Load a deployment whose middleware writes a WAL at `wal_path` (the file
/// is created; an existing log is replayed first, so call this on a fresh
/// path for a clean load). Every batch of the load is logged, which makes
/// the deployment recoverable via [`reopen_durable`].
pub fn load_durable_from_data(
    config: MthConfig,
    engine_config: EngineConfig,
    data: &GeneratedData,
    wal_path: &std::path::Path,
) -> mtbase::Result<MthDeployment> {
    Ok(load_into(
        MtBase::open_durable(engine_config, wal_path)?,
        config,
        data,
    ))
}

/// Re-open a durable MT-H deployment from its WAL: tables, tenants and
/// privileges recover from the log; the conversion functions and inline
/// specs (native closures — never logged) are re-registered exactly as at
/// first load. The single-tenant baseline is not durable, so the result is
/// the bare middleware, not an [`MthDeployment`].
pub fn reopen_durable(
    engine_config: EngineConfig,
    wal_path: &std::path::Path,
) -> mtbase::Result<Arc<MtBase>> {
    let server = MtBase::open_durable(engine_config, wal_path)?;
    register_mth_conversions(&server);
    Ok(server)
}

fn load_into(server: Arc<MtBase>, config: MthConfig, data: &GeneratedData) -> MthDeployment {
    // Schema.
    for ddl in MTH_DDL {
        match mtsql::parse_statement(ddl).expect("MT-H DDL parses") {
            Statement::CreateTable(ct) => server.create_table(&ct).expect("create table"),
            _ => unreachable!("MT-H DDL only contains CREATE TABLE"),
        }
    }

    // Tenants.
    for t in 1..=config.tenants {
        server.register_tenant(t).expect("register tenant");
    }

    // Conversion functions: currency (constant factor) and phone (prefix).
    register_mth_conversions(&server);

    // The Tenant meta table (drives conversion-function inlining).
    {
        let meta_rows: Vec<Vec<Value>> = (1..=config.tenants)
            .map(|t| {
                let (to, from) = MthConfig::currency_rates(t);
                vec![
                    Value::Int(t),
                    Value::Float(to),
                    Value::Float(from),
                    Value::str(MthConfig::phone_prefix(t)),
                ]
            })
            .collect();
        server
            .raw_execute(
                "CREATE TABLE Tenant GLOBAL (
                    T_tenant_key INTEGER NOT NULL,
                    T_currency_to DECIMAL(15,6) NOT NULL,
                    T_currency_from DECIMAL(15,6) NOT NULL,
                    T_phone_prefix VARCHAR(8) NOT NULL)",
            )
            .expect("create Tenant meta table");
        server.load_rows("Tenant", meta_rows).expect("load Tenant");
    }

    // Data.
    for (table, rows) in &data.mt {
        server
            .load_rows(table, rows.clone())
            .unwrap_or_else(|e| panic!("loading MT table {table}: {e}"));
    }

    // The benchmark client (tenant 1) has been granted access to everything.
    server.grant_read_all(1).expect("grant read");

    // Baseline single-tenant database.
    let mut baseline = Engine::new(EngineConfig::postgres_like());
    let baseline_tables: [(&str, &[&str]); 8] = [
        ("region", columns::REGION),
        ("nation", columns::NATION),
        ("supplier", columns::SUPPLIER),
        ("part", columns::PART),
        ("partsupp", columns::PARTSUPP),
        ("customer", columns::CUSTOMER),
        ("orders", columns::ORDERS),
        ("lineitem", columns::LINEITEM),
    ];
    for (table, cols) in baseline_tables {
        baseline.create_table(table, cols);
        baseline
            .insert_values(table, data.baseline[table].clone())
            .unwrap_or_else(|e| panic!("loading baseline table {table}: {e}"));
    }

    MthDeployment {
        server,
        baseline,
        config,
    }
}

/// Register the MT-H conversion-function pairs (currency factor + phone
/// prefix) with their inline specifications. Shared by the initial load and
/// by [`reopen_durable`] — UDF closures never reach the WAL, so recovery
/// re-runs this wiring.
pub fn register_mth_conversions(server: &Arc<MtBase>) {
    let (currency_to, currency_from) =
        currency_udfs_from_rates(Arc::new(MthConfig::currency_rates));
    server.register_conversion(
        ConversionProfile::currency().pair,
        currency_to,
        currency_from,
        Some((
            InlineSpec::Factor {
                meta_table: "Tenant".into(),
                key_column: "T_tenant_key".into(),
                factor_column: "T_currency_to".into(),
            },
            InlineSpec::Factor {
                meta_table: "Tenant".into(),
                key_column: "T_tenant_key".into(),
                factor_column: "T_currency_from".into(),
            },
        )),
    );
    let (phone_to, phone_from) =
        phone_udfs_from_prefixes(Arc::new(|t: TenantId| MthConfig::phone_prefix(t)));
    server.register_conversion(
        ConversionProfile::phone().pair,
        phone_to,
        phone_from,
        Some((
            InlineSpec::PhoneStripPrefix {
                meta_table: "Tenant".into(),
                key_column: "T_tenant_key".into(),
                prefix_column: "T_phone_prefix".into(),
            },
            InlineSpec::PhonePrependPrefix {
                meta_table: "Tenant".into(),
                key_column: "T_tenant_key".into(),
                prefix_column: "T_phone_prefix".into(),
            },
        )),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MthConfig;
    use mtrewrite::OptLevel;

    fn tiny() -> MthDeployment {
        load(
            MthConfig {
                scale: 0.1,
                tenants: 3,
                ..MthConfig::default()
            },
            EngineConfig::postgres_like(),
        )
    }

    #[test]
    fn deployment_has_all_tables_loaded() {
        let dep = tiny();
        for table in [
            "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
        ] {
            let mt = dep
                .server
                .raw_query(&format!("SELECT COUNT(*) FROM {table}"))
                .unwrap();
            assert!(
                mt.rows[0][0].as_i64().unwrap() > 0,
                "{table} empty in MT db"
            );
            let base = dep
                .baseline
                .query(&format!("SELECT COUNT(*) FROM {table}"))
                .unwrap();
            assert!(
                base.rows[0][0].as_i64().unwrap() > 0,
                "{table} empty in baseline"
            );
        }
        let tenants = dep.server.raw_query("SELECT COUNT(*) FROM Tenant").unwrap();
        assert_eq!(tenants.rows[0][0], Value::Int(3));
    }

    #[test]
    fn client_one_can_query_the_whole_dataset() {
        let dep = tiny();
        let mut conn = dep.server.connect(1);
        conn.execute("SET SCOPE = \"IN ()\"").unwrap();
        conn.set_opt_level(OptLevel::O1);
        let mt_count = conn.query("SELECT COUNT(*) FROM lineitem").unwrap();
        let base_count = dep.baseline.query("SELECT COUNT(*) FROM lineitem").unwrap();
        assert_eq!(mt_count.rows[0][0], base_count.rows[0][0]);
    }

    #[test]
    fn tenant_specific_tables_are_partitioned_by_ttid() {
        let dep = tiny();
        let engine = dep.server.raw_query("SELECT COUNT(*) FROM lineitem");
        assert!(engine.is_ok());
        // Scoped scans must prune the other two tenants' buckets.
        let mut conn = dep.server.connect(1);
        conn.set_opt_level(OptLevel::O4);
        conn.execute("SET SCOPE = \"IN (1)\"").unwrap();
        conn.query("SELECT COUNT(*) FROM lineitem").unwrap();
        let stats = conn.last_query_stats();
        assert_eq!(stats.partitions_scanned, 1, "{stats:?}");
        assert_eq!(stats.partitions_pruned, 2, "{stats:?}");
    }

    #[test]
    fn default_scope_restricts_to_own_share() {
        let dep = tiny();
        let mut conn = dep.server.connect(2);
        let own = conn.query("SELECT COUNT(*) FROM customer").unwrap();
        let all = dep
            .server
            .raw_query("SELECT COUNT(*) FROM customer")
            .unwrap();
        assert!(own.rows[0][0].as_i64().unwrap() < all.rows[0][0].as_i64().unwrap());
    }
}

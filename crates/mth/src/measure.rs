//! Measurement helpers shared by the table/figure harnesses: the paper runs
//! every query three times and reports the last measurement with two
//! significant digits.

use std::time::{Duration, Instant};

use mtrewrite::OptLevel;

use crate::loader::MthDeployment;
use crate::validate::{run_baseline_query, run_mt_query};

/// One measured cell of a paper table.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub query: usize,
    pub level: Option<OptLevel>,
    pub seconds: f64,
    pub rows: usize,
}

/// Run an MT-H query `runs` times and report the last run (paper methodology).
pub fn measure_mt(
    dep: &MthDeployment,
    query: usize,
    level: OptLevel,
    runs: usize,
) -> Result<Measurement, String> {
    let mut last = Duration::ZERO;
    let mut rows = 0;
    for _ in 0..runs.max(1) {
        dep.server.reset_stats();
        let start = Instant::now();
        let rs = run_mt_query(dep, query, level).map_err(|e| e.to_string())?;
        last = start.elapsed();
        rows = rs.rows.len();
    }
    Ok(Measurement {
        query,
        level: Some(level),
        seconds: last.as_secs_f64(),
        rows,
    })
}

/// Run the plain TPC-H baseline query `runs` times and report the last run.
pub fn measure_baseline(
    dep: &MthDeployment,
    query: usize,
    runs: usize,
) -> Result<Measurement, String> {
    let mut last = Duration::ZERO;
    let mut rows = 0;
    for _ in 0..runs.max(1) {
        dep.baseline.reset_stats();
        let start = Instant::now();
        let rs = run_baseline_query(dep, query).map_err(|e| e.to_string())?;
        last = start.elapsed();
        rows = rs.rows.len();
    }
    Ok(Measurement {
        query,
        level: None,
        seconds: last.as_secs_f64(),
        rows,
    })
}

/// Format a duration the way the paper's tables do: two significant digits.
pub fn two_significant_digits(seconds: f64) -> String {
    if seconds <= 0.0 {
        return "0".to_string();
    }
    let magnitude = seconds.abs().log10().floor() as i32;
    let digits = (1 - magnitude).max(0) as usize;
    format!("{seconds:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_matches_paper_style() {
        assert_eq!(two_significant_digits(0.275), "0.28");
        assert_eq!(two_significant_digits(2.64), "2.6");
        assert_eq!(two_significant_digits(87.3), "87");
        assert_eq!(two_significant_digits(0.081), "0.081");
    }
}

//! The MTBase catalog: table / column metadata, tenants, conversion
//! functions and privileges.

use std::collections::BTreeMap;

use mtsql::ast::{Comparability, CreateTable, DataType, Privilege, TableGenerality, TenantId};
use serde::{Deserialize, Serialize};

use crate::conversion::ConversionFnPair;
use crate::privileges::PrivilegeStore;

/// Name of the invisible meta column holding the owning tenant of each record
/// in a tenant-specific table (basic/ST layout, Figure 2 of the paper).
pub const TTID_COLUMN: &str = "ttid";

/// Column metadata with the *resolved* comparability (defaults already
/// applied: columns of global tables are comparable, unannotated columns of
/// tenant-specific tables are tenant-specific).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMeta {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
    pub comparability: Comparability,
}

/// Table metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableMeta {
    pub name: String,
    pub generality: TableGenerality,
    pub columns: Vec<ColumnMeta>,
}

impl TableMeta {
    /// `true` for tenant-specific tables (which carry the hidden ttid column).
    pub fn is_tenant_specific(&self) -> bool {
        self.generality == TableGenerality::TenantSpecific
    }

    /// Look up a column by case-insensitive name.
    pub fn column(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// The full catalog. Tables are stored case-insensitively by lower-cased name.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: BTreeMap<String, TableMeta>,
    tenants: Vec<TenantId>,
    conversions: BTreeMap<String, ConversionFnPair>,
    privileges: PrivilegeStore,
    /// Monotonic change counter, bumped by every mutation that can change
    /// what a rewritten query looks like: DDL (tables, conversions, views
    /// via [`Catalog::bump_epoch`]), tenant registration, and any access to
    /// the mutable privilege store (GRANT / REVOKE). Cached rewrite/plan
    /// artifacts key on this epoch, so a bump invalidates them wholesale
    /// instead of tracking fine-grained dependencies.
    epoch: u64,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    // -- change epoch ---------------------------------------------------------

    /// The current schema/privilege epoch. Two reads returning the same
    /// value guarantee that no catalog mutation happened in between, so a
    /// rewrite/plan derived under that epoch is still valid.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bump the epoch explicitly. Catalog mutators bump it themselves; this
    /// is for schema changes the catalog does not see directly (CREATE /
    /// DROP VIEW live in the engine) but that still invalidate cached plans.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Raise the epoch to at least `floor`. Called after WAL recovery with
    /// the last replayed LSN, so catalog epochs never repeat across a crash:
    /// cached plan artifacts keyed on a pre-crash epoch can never collide
    /// with a post-recovery catalog state.
    pub fn set_epoch_floor(&mut self, floor: u64) {
        self.epoch = self.epoch.max(floor);
    }

    // -- tables -------------------------------------------------------------

    /// Register a table from a parsed MTSQL `CREATE TABLE` statement, applying
    /// the comparability defaults of §2.2.1.
    pub fn register_create_table(&mut self, ct: &CreateTable) {
        let columns = ct
            .columns
            .iter()
            .map(|c| {
                let comparability = match (&c.comparability, ct.generality) {
                    (Some(cmp), _) => cmp.clone(),
                    (None, TableGenerality::Global) => Comparability::Comparable,
                    (None, TableGenerality::TenantSpecific) => Comparability::TenantSpecific,
                };
                ColumnMeta {
                    name: c.name.clone(),
                    data_type: c.data_type,
                    not_null: c.not_null,
                    comparability,
                }
            })
            .collect();
        self.tables.insert(
            ct.name.to_ascii_lowercase(),
            TableMeta {
                name: ct.name.clone(),
                generality: ct.generality,
                columns,
            },
        );
        self.bump_epoch();
    }

    /// Register a table directly from metadata (used by the MT-H generator).
    pub fn register_table(&mut self, table: TableMeta) {
        self.tables.insert(table.name.to_ascii_lowercase(), table);
        self.bump_epoch();
    }

    /// Remove a table; returns whether it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        let existed = self.tables.remove(&name.to_ascii_lowercase()).is_some();
        if existed {
            self.bump_epoch();
        }
        existed
    }

    /// Look up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Option<&TableMeta> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Iterate over all registered tables.
    pub fn tables(&self) -> impl Iterator<Item = &TableMeta> {
        self.tables.values()
    }

    /// Find the unique table containing a column of the given name.
    /// Returns `None` when the column is unknown or ambiguous.
    pub fn table_of_column(&self, column: &str) -> Option<&TableMeta> {
        let mut found = None;
        for t in self.tables.values() {
            if t.column(column).is_some() {
                if found.is_some() {
                    return None;
                }
                found = Some(t);
            }
        }
        found
    }

    /// Resolve the comparability of `column` of table `table`.
    pub fn comparability(&self, table: &str, column: &str) -> Option<&Comparability> {
        self.table(table)
            .and_then(|t| t.column(column))
            .map(|c| &c.comparability)
    }

    // -- tenants ------------------------------------------------------------

    /// Register a tenant. Registering twice is a no-op.
    pub fn register_tenant(&mut self, tenant: TenantId) {
        if !self.tenants.contains(&tenant) {
            self.tenants.push(tenant);
            self.tenants.sort_unstable();
            // A new tenant changes `IN ()` (all-tenants) scope resolution,
            // so cached plans derived from the old tenant set must go.
            self.bump_epoch();
        }
    }

    /// All tenants currently registered (sorted).
    pub fn tenants(&self) -> &[TenantId] {
        &self.tenants
    }

    /// `true` when the tenant is known.
    pub fn has_tenant(&self, tenant: TenantId) -> bool {
        self.tenants.binary_search(&tenant).is_ok()
    }

    // -- conversion functions -------------------------------------------------

    /// Register a conversion-function pair. The pair is indexed under both the
    /// `toUniversal` and the `fromUniversal` name.
    pub fn register_conversion(&mut self, pair: ConversionFnPair) {
        self.conversions
            .insert(pair.to_universal.to_ascii_lowercase(), pair.clone());
        self.conversions
            .insert(pair.from_universal.to_ascii_lowercase(), pair);
        self.bump_epoch();
    }

    /// Look up a conversion pair by either of its function names.
    pub fn conversion_by_name(&self, name: &str) -> Option<&ConversionFnPair> {
        self.conversions.get(&name.to_ascii_lowercase())
    }

    /// The conversion pair attached to a convertible column, if any.
    pub fn conversion_for_column(&self, table: &str, column: &str) -> Option<&ConversionFnPair> {
        match self.comparability(table, column)? {
            Comparability::Convertible { to_universal, .. } => {
                self.conversion_by_name(to_universal)
            }
            _ => None,
        }
    }

    // -- privileges -----------------------------------------------------------

    /// Mutable access to the privilege store (used when executing DCL).
    /// Handing out the mutable reference counts as a mutation: the epoch is
    /// bumped unconditionally, because any GRANT/REVOKE may change the
    /// effective dataset D' of cached plans.
    pub fn privileges_mut(&mut self) -> &mut PrivilegeStore {
        self.bump_epoch();
        &mut self.privileges
    }

    /// Read access to the privilege store.
    pub fn privileges(&self) -> &PrivilegeStore {
        &self.privileges
    }

    /// Prune dataset `D` to `D'` for `client` w.r.t. the *tenant-specific*
    /// tables referenced by a statement. Global tables are readable by
    /// everyone and therefore never prune anything.
    pub fn prune_dataset(
        &self,
        client: TenantId,
        dataset: &[TenantId],
        tables: &[String],
    ) -> Vec<TenantId> {
        let specific: Vec<String> = tables
            .iter()
            .filter(|t| {
                self.table(t)
                    .map(|m| m.is_tenant_specific())
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        self.privileges.prune_dataset(client, dataset, &specific)
    }

    /// Does `client` hold `privilege` on `owner`'s share of `table`?
    /// Global tables are readable by every tenant.
    pub fn has_privilege(
        &self,
        owner: TenantId,
        table: &str,
        client: TenantId,
        privilege: Privilege,
    ) -> bool {
        if let Some(meta) = self.table(table) {
            if !meta.is_tenant_specific() && privilege == Privilege::Read {
                return true;
            }
        }
        self.privileges
            .has_privilege(owner, table, client, privilege)
    }
}

/// Build the catalog of the running example of the paper (Figure 2):
/// `Employees` and `Roles` are tenant-specific, `Regions` is global, and
/// `E_salary` is convertible through the currency pair.
pub fn running_example_catalog() -> Catalog {
    use crate::conversion::ConversionProfile;
    use mtsql::ast::Statement;
    use mtsql::parse_statement;

    let mut catalog = Catalog::new();
    let ddl = [
        "CREATE TABLE Employees SPECIFIC (
            E_emp_id INTEGER NOT NULL SPECIFIC,
            E_name VARCHAR(25) NOT NULL COMPARABLE,
            E_role_id INTEGER NOT NULL SPECIFIC,
            E_reg_id INTEGER NOT NULL COMPARABLE,
            E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
            E_age INTEGER NOT NULL COMPARABLE,
            CONSTRAINT pk_emp PRIMARY KEY (E_emp_id)
        )",
        "CREATE TABLE Roles SPECIFIC (
            R_role_id INTEGER NOT NULL SPECIFIC,
            R_name VARCHAR(25) NOT NULL COMPARABLE
        )",
        "CREATE TABLE Regions GLOBAL (
            Re_reg_id INTEGER NOT NULL,
            Re_name VARCHAR(25) NOT NULL
        )",
    ];
    for sql in ddl {
        match parse_statement(sql).expect("running example DDL parses") {
            Statement::CreateTable(ct) => catalog.register_create_table(&ct),
            _ => unreachable!(),
        }
    }
    catalog.register_conversion(ConversionProfile::currency().pair);
    for t in 0..2 {
        catalog.register_tenant(t);
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionClass;

    #[test]
    fn running_example_matches_table1() {
        let cat = running_example_catalog();
        // Table 1 of the paper: comparability classification.
        assert_eq!(
            cat.comparability("Employees", "E_age"),
            Some(&Comparability::Comparable)
        );
        assert_eq!(
            cat.comparability("Employees", "E_reg_id"),
            Some(&Comparability::Comparable)
        );
        assert!(matches!(
            cat.comparability("Employees", "E_salary"),
            Some(Comparability::Convertible { .. })
        ));
        assert_eq!(
            cat.comparability("Employees", "E_role_id"),
            Some(&Comparability::TenantSpecific)
        );
        assert_eq!(
            cat.comparability("Roles", "R_role_id"),
            Some(&Comparability::TenantSpecific)
        );
        assert_eq!(
            cat.comparability("Regions", "Re_name"),
            Some(&Comparability::Comparable)
        );
    }

    #[test]
    fn global_table_columns_default_to_comparable() {
        let cat = running_example_catalog();
        assert_eq!(
            cat.comparability("Regions", "Re_reg_id"),
            Some(&Comparability::Comparable)
        );
        assert!(!cat.table("Regions").unwrap().is_tenant_specific());
        assert!(cat.table("Employees").unwrap().is_tenant_specific());
    }

    #[test]
    fn case_insensitive_lookup() {
        let cat = running_example_catalog();
        assert!(cat.table("employees").is_some());
        assert!(cat.table("EMPLOYEES").is_some());
        assert!(cat.comparability("employees", "e_salary").is_some());
    }

    #[test]
    fn conversion_lookup_for_column() {
        let cat = running_example_catalog();
        let pair = cat.conversion_for_column("Employees", "E_salary").unwrap();
        assert_eq!(pair.class, ConversionClass::ConstantFactor);
        assert_eq!(pair.to_universal, "currencyToUniversal");
        assert!(cat.conversion_for_column("Employees", "E_age").is_none());
    }

    #[test]
    fn table_of_column_finds_unique_owner() {
        let cat = running_example_catalog();
        assert_eq!(cat.table_of_column("E_salary").unwrap().name, "Employees");
        assert_eq!(cat.table_of_column("R_name").unwrap().name, "Roles");
        assert!(cat.table_of_column("no_such_column").is_none());
    }

    #[test]
    fn tenant_registry_is_sorted_and_deduplicated() {
        let mut cat = Catalog::new();
        cat.register_tenant(5);
        cat.register_tenant(1);
        cat.register_tenant(5);
        assert_eq!(cat.tenants(), &[1, 5]);
        assert!(cat.has_tenant(1));
        assert!(!cat.has_tenant(2));
    }

    #[test]
    fn prune_dataset_ignores_global_tables() {
        let cat = running_example_catalog();
        // Regions is global: reading other tenants' data through it never
        // requires a grant.
        let pruned = cat.prune_dataset(0, &[0, 1], &["Regions".into()]);
        assert_eq!(pruned, vec![0, 1]);
        // Employees is tenant-specific: without grants only C itself remains.
        let pruned = cat.prune_dataset(0, &[0, 1], &["Employees".into()]);
        assert_eq!(pruned, vec![0]);
    }

    #[test]
    fn global_tables_are_readable_by_everyone() {
        let cat = running_example_catalog();
        assert!(cat.has_privilege(0, "Regions", 1, Privilege::Read));
        assert!(!cat.has_privilege(0, "Employees", 1, Privilege::Read));
    }

    #[test]
    fn drop_table_removes_metadata() {
        let mut cat = running_example_catalog();
        assert!(cat.drop_table("Roles"));
        assert!(cat.table("Roles").is_none());
        assert!(!cat.drop_table("Roles"));
    }
}

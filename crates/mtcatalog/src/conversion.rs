//! Conversion-function metadata and its algebraic classification.
//!
//! §2.2.2 of the paper defines a *conversion function pair*
//! `(toUniversal, fromUniversal)` per convertible attribute and per tenant.
//! Beyond the minimal equality-preserving requirement, pairs can be
//! order-preserving, a multiplication by a constant, or linear — which
//! determines which aggregation functions distribute over them (Table 2).

use serde::{Deserialize, Serialize};

/// The algebraic class of a conversion function pair. Classes are ordered from
/// most to least structure; each class implies all the guarantees of the ones
/// below it in the enum (a constant factor is linear, linear with positive
/// slope is order-preserving, and every valid pair is equality-preserving).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConversionClass {
    /// `to(x) = c · x` with `c > 0` (e.g. currency conversion).
    ConstantFactor,
    /// `to(x) = a · x + b` with `a > 0` (e.g. temperature scales).
    Linear,
    /// Monotonic but not linear.
    OrderPreserving,
    /// Only the minimal guarantee from Definition 1 (e.g. phone-prefix
    /// rewriting, which is a string transformation).
    EqualityPreserving,
}

/// The standard SQL aggregation functions considered in Table 2 of the paper,
/// plus `Holistic` as a stand-in for non-distributable aggregates (e.g.
/// `MEDIAN`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateKind {
    Count,
    Min,
    Max,
    Sum,
    Avg,
    Holistic,
}

impl AggregateKind {
    /// Parse an aggregate function name (`SUM`, `count`, ...).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggregateKind::Count),
            "MIN" => Some(AggregateKind::Min),
            "MAX" => Some(AggregateKind::Max),
            "SUM" => Some(AggregateKind::Sum),
            "AVG" => Some(AggregateKind::Avg),
            _ => None,
        }
    }
}

impl ConversionClass {
    /// Distributability of aggregation function `agg` over this conversion
    /// class — a verbatim encoding of Table 2 of the paper:
    ///
    /// | | c·x | a·x+b | order-pres. | equality-pres. |
    /// |---|---|---|---|---|
    /// | COUNT | ✓ | ✓ | ✓ | ✓ |
    /// | MIN   | ✓ | ✓ | ✓ | ✗ |
    /// | MAX   | ✓ | ✓ | ✓ | ✗ |
    /// | SUM   | ✓ | ✓ | ✗ | ✗ |
    /// | AVG   | ✓ | ✓ | ✗ | ✗ |
    /// | holistic | ✗ | ✗ | ✗ | ✗ |
    pub fn distributes(&self, agg: AggregateKind) -> bool {
        use AggregateKind::*;
        use ConversionClass::*;
        match agg {
            Holistic => false,
            Count => true,
            Min | Max => matches!(self, ConstantFactor | Linear | OrderPreserving),
            Sum | Avg => matches!(self, ConstantFactor | Linear),
        }
    }

    /// Whether the pair preserves ordering for all tenants.
    pub fn is_order_preserving(&self) -> bool {
        matches!(
            self,
            ConversionClass::ConstantFactor
                | ConversionClass::Linear
                | ConversionClass::OrderPreserving
        )
    }
}

/// Metadata for a conversion-function pair registered in the catalog.
///
/// The actual implementations (per-tenant parameters and the computation) are
/// registered with the engine; the catalog only needs names and the class so
/// the rewriter can reason about applicability of optimizations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConversionFnPair {
    /// Name of the `toUniversal(x, ttid)` function.
    pub to_universal: String,
    /// Name of the `fromUniversal(x, ttid)` function.
    pub from_universal: String,
    /// Algebraic class (drives aggregation distribution, Table 2).
    pub class: ConversionClass,
    /// Whether the functions may be treated as deterministic/immutable by the
    /// executing DBMS (enables result caching à la PostgreSQL).
    pub immutable: bool,
}

/// A named *domain* of convertible values (the paper uses `currency` and
/// `phone format`), bundling the pair with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConversionProfile {
    pub domain: String,
    pub pair: ConversionFnPair,
}

impl ConversionProfile {
    /// The currency profile from the paper: multiplication by a per-tenant
    /// exchange rate, universal format USD.
    pub fn currency() -> Self {
        ConversionProfile {
            domain: "currency".to_string(),
            pair: ConversionFnPair {
                to_universal: "currencyToUniversal".to_string(),
                from_universal: "currencyFromUniversal".to_string(),
                class: ConversionClass::ConstantFactor,
                immutable: true,
            },
        }
    }

    /// The phone-format profile from the paper: prefix manipulation, universal
    /// format is the prefix-less number. Equality-preserving only.
    pub fn phone() -> Self {
        ConversionProfile {
            domain: "phone".to_string(),
            pair: ConversionFnPair {
                to_universal: "phoneToUniversal".to_string(),
                from_universal: "phoneFromUniversal".to_string(),
                class: ConversionClass::EqualityPreserving,
                immutable: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constant_factor_column() {
        let c = ConversionClass::ConstantFactor;
        for agg in [
            AggregateKind::Count,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Sum,
            AggregateKind::Avg,
        ] {
            assert!(c.distributes(agg), "{agg:?} must distribute over c*x");
        }
        assert!(!c.distributes(AggregateKind::Holistic));
    }

    #[test]
    fn table2_linear_column() {
        let c = ConversionClass::Linear;
        assert!(c.distributes(AggregateKind::Sum));
        assert!(c.distributes(AggregateKind::Avg));
        assert!(c.distributes(AggregateKind::Min));
        assert!(!c.distributes(AggregateKind::Holistic));
    }

    #[test]
    fn table2_order_preserving_column() {
        let c = ConversionClass::OrderPreserving;
        assert!(c.distributes(AggregateKind::Count));
        assert!(c.distributes(AggregateKind::Min));
        assert!(c.distributes(AggregateKind::Max));
        assert!(!c.distributes(AggregateKind::Sum));
        assert!(!c.distributes(AggregateKind::Avg));
    }

    #[test]
    fn table2_equality_preserving_column() {
        let c = ConversionClass::EqualityPreserving;
        assert!(c.distributes(AggregateKind::Count));
        assert!(!c.distributes(AggregateKind::Min));
        assert!(!c.distributes(AggregateKind::Max));
        assert!(!c.distributes(AggregateKind::Sum));
        assert!(!c.distributes(AggregateKind::Avg));
    }

    #[test]
    fn aggregate_kind_parsing() {
        assert_eq!(AggregateKind::from_name("sum"), Some(AggregateKind::Sum));
        assert_eq!(AggregateKind::from_name("AVG"), Some(AggregateKind::Avg));
        assert_eq!(AggregateKind::from_name("median"), None);
    }

    #[test]
    fn paper_profiles() {
        assert_eq!(
            ConversionProfile::currency().pair.class,
            ConversionClass::ConstantFactor
        );
        assert_eq!(
            ConversionProfile::phone().pair.class,
            ConversionClass::EqualityPreserving
        );
        // The phone pair does not distribute over SUM (paper §4.2.2), the
        // currency pair distributes over all standard aggregates.
        assert!(!ConversionProfile::phone()
            .pair
            .class
            .distributes(AggregateKind::Sum));
        assert!(ConversionProfile::currency()
            .pair
            .class
            .distributes(AggregateKind::Sum));
    }
}

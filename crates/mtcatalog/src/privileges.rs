//! Privilege store implementing the MTSQL DCL semantics (§2.3).
//!
//! Privileges are tracked per *(owner tenant, table, grantee tenant)*: a
//! `GRANT READ ON Employees TO 42` issued by client `C = 0` grants tenant 42
//! read access to tenant 0's logical share of `Employees`.

use std::collections::{HashMap, HashSet};

use mtsql::ast::{Privilege, TenantId};
use serde::{Deserialize, Serialize};

/// Key of a privilege entry: which grantee may act on which owner's data in
/// which table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct PrivilegeKey {
    owner: TenantId,
    table: String,
    grantee: TenantId,
}

/// Stores explicit grants plus the default rules of the paper:
/// a tenant always has full access to her own instances of tenant-specific
/// tables and read access to global tables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrivilegeStore {
    grants: HashMap<PrivilegeKey, HashSet<Privilege>>,
}

impl PrivilegeStore {
    /// Create an empty store (only the implicit default privileges apply).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `GRANT privileges ON table TO grantee` issued by `owner`.
    pub fn grant(
        &mut self,
        owner: TenantId,
        table: &str,
        grantee: TenantId,
        privileges: &[Privilege],
    ) {
        let key = PrivilegeKey {
            owner,
            table: table.to_string(),
            grantee,
        };
        self.grants
            .entry(key)
            .or_default()
            .extend(privileges.iter().copied());
    }

    /// Record `REVOKE privileges ON table FROM grantee` issued by `owner`.
    pub fn revoke(
        &mut self,
        owner: TenantId,
        table: &str,
        grantee: TenantId,
        privileges: &[Privilege],
    ) {
        let key = PrivilegeKey {
            owner,
            table: table.to_string(),
            grantee,
        };
        if let Some(set) = self.grants.get_mut(&key) {
            for p in privileges {
                set.remove(p);
            }
            if set.is_empty() {
                self.grants.remove(&key);
            }
        }
    }

    /// Does `grantee` hold `privilege` on `owner`'s share of `table`?
    ///
    /// A tenant implicitly holds every privilege on her own data, so
    /// `owner == grantee` always returns `true`.
    pub fn has_privilege(
        &self,
        owner: TenantId,
        table: &str,
        grantee: TenantId,
        privilege: Privilege,
    ) -> bool {
        if owner == grantee {
            return true;
        }
        let key = PrivilegeKey {
            owner,
            table: table.to_string(),
            grantee,
        };
        self.grants
            .get(&key)
            .is_some_and(|set| set.contains(&privilege))
    }

    /// Prune a dataset `D` to `D'`: keep only owners whose share of **all**
    /// the given tables the `client` may read (paper §3: "D is compared
    /// against privileges of C ... and ttids in D without the corresponding
    /// privilege are pruned").
    pub fn prune_dataset(
        &self,
        client: TenantId,
        dataset: &[TenantId],
        tables: &[String],
    ) -> Vec<TenantId> {
        dataset
            .iter()
            .copied()
            .filter(|owner| {
                tables
                    .iter()
                    .all(|t| self.has_privilege(*owner, t, client, Privilege::Read))
            })
            .collect()
    }

    /// Number of explicit grant entries (for introspection/tests).
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// `true` when no explicit grants have been recorded.
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_data_is_always_accessible() {
        let store = PrivilegeStore::new();
        assert!(store.has_privilege(7, "Employees", 7, Privilege::Read));
        assert!(store.has_privilege(7, "Employees", 7, Privilege::Delete));
    }

    #[test]
    fn grant_and_revoke_cycle() {
        let mut store = PrivilegeStore::new();
        assert!(!store.has_privilege(0, "Employees", 42, Privilege::Read));
        store.grant(0, "Employees", 42, &[Privilege::Read]);
        assert!(store.has_privilege(0, "Employees", 42, Privilege::Read));
        assert!(!store.has_privilege(0, "Employees", 42, Privilege::Update));
        store.revoke(0, "Employees", 42, &[Privilege::Read]);
        assert!(!store.has_privilege(0, "Employees", 42, Privilege::Read));
        assert!(store.is_empty());
    }

    #[test]
    fn grant_is_per_owner() {
        let mut store = PrivilegeStore::new();
        store.grant(0, "Employees", 42, &[Privilege::Read]);
        // Tenant 1 never granted anything to 42.
        assert!(!store.has_privilege(1, "Employees", 42, Privilege::Read));
    }

    #[test]
    fn prune_dataset_keeps_only_readable_owners() {
        let mut store = PrivilegeStore::new();
        store.grant(2, "Orders", 1, &[Privilege::Read]);
        store.grant(3, "Orders", 1, &[Privilege::Read]);
        store.grant(3, "Lineitem", 1, &[Privilege::Read]);
        let pruned = store.prune_dataset(1, &[1, 2, 3, 4], &["Orders".into(), "Lineitem".into()]);
        // 1 = self, 3 = granted on both tables; 2 lacks Lineitem, 4 lacks both.
        assert_eq!(pruned, vec![1, 3]);
    }

    #[test]
    fn prune_with_no_tables_keeps_everything() {
        let store = PrivilegeStore::new();
        assert_eq!(store.prune_dataset(1, &[1, 2, 3], &[]), vec![1, 2, 3]);
    }
}

//! Catalog for an MTBase deployment: table and column metadata (including the
//! MTSQL-specific *generality* and *comparability*), the tenant registry,
//! conversion-function metadata and the privilege store used to prune the
//! dataset `D` into `D'`.
//!
//! The catalog is deliberately independent of the execution engine: the
//! rewriter (`mtrewrite`) only needs this metadata, while the engine
//! (`mtengine`) additionally binds conversion-function *implementations*.

pub mod catalog;
pub mod conversion;
pub mod privileges;

pub use catalog::{running_example_catalog, Catalog, ColumnMeta, TableMeta, TTID_COLUMN};
pub use conversion::{AggregateKind, ConversionClass, ConversionFnPair, ConversionProfile};
pub use privileges::PrivilegeStore;

pub use mtsql::ast::{Comparability, Privilege, TableGenerality, TenantId};

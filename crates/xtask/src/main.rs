//! Repo automation binary (`cargo run -p xtask -- <command>`).
//!
//! The only command today is `lint`: a network-free, text/line-based pass
//! (in the same spirit as the vendored shims — no external parser crates)
//! enforcing the repo rules CI gates on:
//!
//! 1. **No `unwrap()` / `expect()` / `panic!` in `crates/mtengine` and
//!    `crates/mtbase` non-test code.** The typed-error convention (PR 6 for
//!    the engine's `EngineError`, PR 10 for the middleware's `MtError`)
//!    routes every fallible path through a `Result`; a panic in either
//!    layer takes the whole server down. Test modules (everything from a
//!    `#[cfg(test)]` line to end-of-file) and the test-support module
//!    `mtbase/src/testkit.rs` are exempt, and a genuinely infallible site
//!    can carry an inline `// lint:allow(...)` on the same or the
//!    preceding line.
//! 2. **No `Instant::now` in `crates/mtengine` non-test code.** Timing
//!    belongs in the bench harness; a clock read inside a kernel loop is a
//!    per-row syscall regression that profiles as "mysterious scan
//!    overhead".
//! 3. **Lock-acquisition ordering in `crates/mtbase`.** The server's
//!    convention is catalog lock before engine lock (the engine borrow is
//!    the innermost, matching how DDL writes both); a function acquiring
//!    them in the opposite order is a deadlock waiting for the first
//!    concurrent DDL statement.
//! 4. **No non-shim external dependencies.** The build environment is
//!    offline; every `[dependencies]` entry in every manifest must be a
//!    `path = ...` or `workspace = true` reference (the workspace-level
//!    table itself must be all `path` entries).
//!
//! Exit status is the number of findings (0 = clean), each printed as
//! `file:line: [rule] message` so editors can jump to them.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("unknown xtask command `{other}` (expected: lint)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

/// One finding: where, which rule, what.
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let mut findings: Vec<Finding> = Vec::new();

    let engine_src = root.join("crates/mtengine/src");
    for file in rust_files(&engine_src) {
        lint_engine_file(&file, &mut findings);
    }
    let base_src = root.join("crates/mtbase/src");
    for file in rust_files(&base_src) {
        if !is_test_support(&file) {
            lint_engine_file(&file, &mut findings);
        }
        lint_lock_order(&file, &mut findings);
    }
    for manifest in manifests(&root) {
        lint_manifest(&manifest, &mut findings);
    }

    for f in &findings {
        println!(
            "{}:{}: [{}] {}",
            f.file.display(),
            f.line,
            f.rule,
            f.message
        );
    }
    if findings.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} finding(s)", findings.len());
        ExitCode::from(findings.len().min(250) as u8)
    }
}

/// Test-support sources exempt from the no-panic rule: `testkit.rs` is the
/// shared example-deployment builder whose callers are all tests.
fn is_test_support(file: &Path) -> bool {
    file.file_name().is_some_and(|n| n == "testkit.rs")
}

/// The workspace root: walk up from the manifest dir of this crate.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Every `.rs` file under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect_files(dir, &mut out, &|p| p.extension().is_some_and(|e| e == "rs"));
    out.sort();
    out
}

/// Every `Cargo.toml` in the workspace (root + every crate, including the
/// nested shims).
fn manifests(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    collect_files(&root.join("crates"), &mut out, &|p| {
        p.file_name().is_some_and(|n| n == "Cargo.toml")
    });
    out.sort();
    out
}

fn collect_files(dir: &Path, out: &mut Vec<PathBuf>, keep: &dyn Fn(&Path) -> bool) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Never descend into build output or VCS state.
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            collect_files(&path, out, keep);
        } else if keep(&path) {
            out.push(path);
        }
    }
}

/// Is this line inside a `//` comment or does it opt out via `lint:allow`?
/// (Escape hatch: same line, or the immediately preceding line.)
fn allowed(lines: &[&str], idx: usize) -> bool {
    let line = lines[idx].trim_start();
    if line.starts_with("//") {
        return true;
    }
    if lines[idx].contains("lint:allow") {
        return true;
    }
    idx > 0 && {
        let prev = lines[idx - 1].trim_start();
        prev.starts_with("//") && prev.contains("lint:allow")
    }
}

/// Rules 1 and 2 over one `mtengine` source file. Test modules start at a
/// `#[cfg(test)]` line and, by repo convention, run to end-of-file.
fn lint_engine_file(file: &Path, findings: &mut Vec<Finding>) {
    let Ok(text) = std::fs::read_to_string(file) else {
        return;
    };
    let lines: Vec<&str> = text.lines().collect();
    for (idx, raw) in lines.iter().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        if allowed(&lines, idx) {
            continue;
        }
        // Strip string literals crudely: panic-macro *names* never appear
        // inside the engine's error messages, so a plain substring check is
        // enough once comments are excluded.
        for (needle, what) in [
            (".unwrap()", "unwrap() on a hot path"),
            (".expect(", "expect() on a hot path"),
            ("panic!(", "panic! on a hot path"),
        ] {
            if raw.contains(needle) {
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line: idx + 1,
                    rule: "no-panic",
                    message: format!(
                        "{what}; return a typed EngineError or annotate `// lint:allow(...)`"
                    ),
                });
            }
        }
        if raw.contains("Instant::now") {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: "no-kernel-clock",
                message: "Instant::now in engine code; timing belongs in the bench harness"
                    .to_string(),
            });
        }
    }
}

/// Rule 3: while a `mtbase` engine-lock guard is live, the catalog lock must
/// not be acquired (`catalog → engine`, never `engine → catalog` — the
/// plan-cache front-end takes catalog first, so the inverse order deadlocks
/// against concurrent DDL). Guard liveness is tracked textually: a
/// `let`-bound engine guard lives until brace depth drops below its binding
/// scope; a temporary (`self.engine.write().execute(...)`) dies on its own
/// line. `fn ` boundaries reset the tracking, matching the repo's
/// rustfmt-formatted style.
fn lint_lock_order(file: &Path, findings: &mut Vec<Finding>) {
    let Ok(text) = std::fs::read_to_string(file) else {
        return;
    };
    let lines: Vec<&str> = text.lines().collect();
    // (line index, brace depth the guard was bound at)
    let mut engine_guard: Option<(usize, i64)> = None;
    let mut depth: i64 = 0;
    for (idx, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        let comment = trimmed.starts_with("//");
        if trimmed.starts_with("fn ")
            || trimmed.starts_with("pub fn ")
            || trimmed.starts_with("pub(crate) fn ")
        {
            engine_guard = None;
        }
        if !comment && !allowed(&lines, idx) {
            let locks_engine = raw.contains(".engine.read()") || raw.contains(".engine.write()");
            let locks_catalog = raw.contains(".catalog.read()") || raw.contains(".catalog.write()");
            if locks_catalog {
                if let Some((at, _)) = engine_guard {
                    findings.push(Finding {
                        file: file.to_path_buf(),
                        line: idx + 1,
                        rule: "lock-order",
                        message: format!(
                            "catalog lock acquired while the engine lock is held \
                             (line {}); the repo convention is catalog → engine",
                            at + 1
                        ),
                    });
                }
            }
            // Only a `let`-bound guard outlives its line.
            if locks_engine && engine_guard.is_none() && trimmed.starts_with("let ") {
                engine_guard = Some((idx, depth));
            }
        }
        if !comment {
            for ch in raw.chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            // The guard dies when its binding scope closes.
            if let Some((_, at_depth)) = engine_guard {
                if depth < at_depth {
                    engine_guard = None;
                }
            }
        }
    }
}

/// Rule 4: every dependency in every manifest is a `path` or `workspace`
/// reference — nothing resolves against crates.io.
fn lint_manifest(file: &Path, findings: &mut Vec<Finding>) {
    let Ok(text) = std::fs::read_to_string(file) else {
        return;
    };
    let mut in_deps = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line.ends_with("dependencies]");
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((_name, spec)) = line.split_once('=') else {
            continue;
        };
        let spec = spec.trim();
        let vendored = spec.contains("path") && spec.contains('=')
            || spec.contains("workspace = true")
            || line.ends_with(".workspace = true");
        if !vendored {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: "no-external-deps",
                message: format!(
                    "`{line}` is not a path/workspace reference; the build is offline — \
                     vendor a shim under crates/shims/ instead"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_escape_hatch_matches_same_and_preceding_line() {
        let lines = vec![
            "let x = a.unwrap(); // lint:allow(unwrap) infallible",
            "// lint:allow(expect) checked above",
            "let y = b.expect(\"msg\");",
            "let z = c.unwrap();",
        ];
        assert!(allowed(&lines, 0));
        assert!(allowed(&lines, 2));
        assert!(!allowed(&lines, 3));
    }

    #[test]
    fn engine_rules_flag_panics_and_clocks() {
        let dir = std::env::temp_dir().join("xtask-lint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("sample.rs");
        std::fs::write(
            &file,
            "fn f() {\n\
             \x20   let a = x.unwrap();\n\
             \x20   let b = y.expect(\"boom\");\n\
             \x20   let t = std::time::Instant::now();\n\
             \x20   let ok = z.unwrap(); // lint:allow(unwrap) test\n\
             }\n\
             #[cfg(test)]\n\
             mod tests { fn g() { h.unwrap(); } }\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_engine_file(&file, &mut findings);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["no-panic", "no-panic", "no-kernel-clock"]);
    }

    #[test]
    fn lock_order_flags_engine_before_catalog() {
        let dir = std::env::temp_dir().join("xtask-lint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("locks.rs");
        std::fs::write(
            &file,
            "fn good(&self) {\n\
             \x20   let c = self.catalog.read();\n\
             \x20   let e = self.engine.write();\n\
             }\n\
             fn bad(&self) {\n\
             \x20   let e = self.engine.write();\n\
             \x20   let c = self.catalog.read();\n\
             }\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_lock_order(&file, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "lock-order");
        assert_eq!(findings[0].line, 7);
    }

    #[test]
    fn manifest_rule_accepts_path_and_workspace_only() {
        let dir = std::env::temp_dir().join("xtask-lint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("Cargo.toml");
        std::fs::write(
            &file,
            "[dependencies]\n\
             mtsql.workspace = true\n\
             serde = { path = \"../shims/serde\" }\n\
             rayon = \"1.8\"\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_manifest(&file, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("rayon"));
    }

    #[test]
    fn the_repo_itself_is_clean() {
        let root = workspace_root();
        let mut findings = Vec::new();
        for file in rust_files(&root.join("crates/mtengine/src")) {
            lint_engine_file(&file, &mut findings);
        }
        for file in rust_files(&root.join("crates/mtbase/src")) {
            if !is_test_support(&file) {
                lint_engine_file(&file, &mut findings);
            }
            lint_lock_order(&file, &mut findings);
        }
        for manifest in manifests(&root) {
            lint_manifest(&manifest, &mut findings);
        }
        let rendered: Vec<String> = findings
            .iter()
            .map(|f| {
                format!(
                    "{}:{}: [{}] {}",
                    f.file.display(),
                    f.line,
                    f.rule,
                    f.message
                )
            })
            .collect();
        assert!(
            rendered.is_empty(),
            "lint findings:\n{}",
            rendered.join("\n")
        );
    }
}

//! Token types produced by the [`lexer`](crate::lexer).

use std::fmt;

/// A single lexical token together with its byte offset in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token in the input.
    pub offset: usize,
}

/// The different kinds of tokens the lexer produces.
///
/// Keywords are recognised case-insensitively and reported as [`TokenKind::Keyword`]
/// with the canonical upper-case spelling; everything else that looks like an
/// identifier becomes [`TokenKind::Ident`] with its original spelling preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A SQL keyword (upper-cased canonical spelling).
    Keyword(String),
    /// An identifier (table, column, alias or function name).
    Ident(String),
    /// A numeric literal, kept as text so the parser can decide int vs float.
    Number(String),
    /// A single-quoted string literal (quotes removed, `''` unescaped).
    StringLit(String),
    /// `@name` — reference to a conversion function in a `CONVERTIBLE` clause.
    AtIdent(String),
    /// `?` — a positional parameter placeholder (auto-numbered by the parser).
    Question,
    /// `$n` — an explicitly numbered parameter placeholder (1-based in SQL).
    DollarParam(u32),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `||` string concatenation
    Concat,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Ident(i) => write!(f, "identifier `{i}`"),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::StringLit(s) => write!(f, "string '{s}'"),
            TokenKind::AtIdent(s) => write!(f, "@{s}"),
            TokenKind::Question => write!(f, "`?`"),
            TokenKind::DollarParam(n) => write!(f, "${n}"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::NotEq => write!(f, "`<>`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::LtEq => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::GtEq => write!(f, "`>=`"),
            TokenKind::Concat => write!(f, "`||`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// The set of words treated as keywords by the lexer.
///
/// Anything not in this list is an ordinary identifier. The list purposely
/// stays minimal: function names like `SUBSTRING` or `EXTRACT` are recognised
/// by the parser from identifier tokens instead, so user tables may reuse
/// them.
pub const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "LIMIT",
    "OFFSET",
    "AS",
    "ON",
    "AND",
    "OR",
    "NOT",
    "IN",
    "EXISTS",
    "BETWEEN",
    "LIKE",
    "IS",
    "NULL",
    "TRUE",
    "FALSE",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "JOIN",
    "INNER",
    "LEFT",
    "RIGHT",
    "FULL",
    "OUTER",
    "CROSS",
    "DISTINCT",
    "ALL",
    "ASC",
    "DESC",
    "UNION",
    "CREATE",
    "TABLE",
    "VIEW",
    "FUNCTION",
    "DROP",
    "ALTER",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "GRANT",
    "REVOKE",
    "TO",
    "PRIMARY",
    "FOREIGN",
    "KEY",
    "REFERENCES",
    "CONSTRAINT",
    "CHECK",
    "UNIQUE",
    "DEFAULT",
    "GLOBAL",
    "SPECIFIC",
    "COMPARABLE",
    "CONVERTIBLE",
    "SCOPE",
    "READ",
    "RETURNS",
    "LANGUAGE",
    "IMMUTABLE",
    "DATE",
    "INTERVAL",
    "CAST",
    "SCOPE",
    "IF",
    "CONCAT",
    "FOR",
    "EXPLAIN",
    "BEGIN",
    "COMMIT",
    "ROLLBACK",
    "TRANSACTION",
];

/// Returns `true` when `word` (case-insensitive) is a SQL/MTSQL keyword.
pub fn is_keyword(word: &str) -> bool {
    let upper = word.to_ascii_uppercase();
    KEYWORDS.contains(&upper.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_detection_is_case_insensitive() {
        assert!(is_keyword("select"));
        assert!(is_keyword("Select"));
        assert!(is_keyword("CONVERTIBLE"));
        assert!(!is_keyword("employees"));
        assert!(!is_keyword("substring"));
    }

    #[test]
    fn token_kind_display() {
        assert_eq!(
            TokenKind::Keyword("SELECT".into()).to_string(),
            "keyword `SELECT`"
        );
        assert_eq!(TokenKind::Concat.to_string(), "`||`");
    }
}

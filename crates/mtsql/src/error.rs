//! Error type shared by the lexer and the parser.

use std::fmt;

/// Error produced while tokenizing or parsing (MT)SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input at which the error was detected, if known.
    pub offset: Option<usize>,
}

impl ParseError {
    /// Create a new error without position information.
    pub fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
            offset: None,
        }
    }

    /// Create a new error at the given byte offset of the input.
    pub fn at(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "parse error at byte {}: {}", off, self.message),
            None => write!(f, "parse error: {}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

/// Convenient result alias for the parser API.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_without_offset() {
        let e = ParseError::new("unexpected end of input");
        assert_eq!(e.to_string(), "parse error: unexpected end of input");
    }

    #[test]
    fn display_with_offset() {
        let e = ParseError::at("unexpected token", 17);
        assert_eq!(e.to_string(), "parse error at byte 17: unexpected token");
    }
}

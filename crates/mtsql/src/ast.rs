//! Abstract syntax tree for SQL and MTSQL statements.
//!
//! The same types represent MTSQL input and plain-SQL output of the rewrite
//! algorithm; MT-specific constructs ([`TableGenerality`], [`Comparability`],
//! [`ScopeSpec`], [`Statement::Grant`] …) simply never appear in rewritten
//! statements.

use serde::{Deserialize, Serialize};

/// A tenant identifier (`ttid` in the paper). The paper uses integers for
/// simplicity; so do we.
pub type TenantId = i64;

/// Top-level (MT)SQL statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// A query (`SELECT ...`).
    Select(Query),
    /// `EXPLAIN query` — render the physical plan instead of executing.
    Explain(Query),
    /// `CREATE TABLE` with MTSQL generality / comparability annotations.
    CreateTable(CreateTable),
    /// `CREATE VIEW name AS query`.
    CreateView(CreateView),
    /// `CREATE FUNCTION` used to register conversion functions.
    CreateFunction(CreateFunction),
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable { name: String, if_exists: bool },
    /// `DROP VIEW [IF EXISTS] name`.
    DropView { name: String, if_exists: bool },
    /// `INSERT INTO ...`.
    Insert(Insert),
    /// `UPDATE ...`.
    Update(Update),
    /// `DELETE FROM ...`.
    Delete(Delete),
    /// MTSQL `GRANT privileges ON object TO tenant`.
    Grant(Grant),
    /// MTSQL `REVOKE privileges ON object FROM tenant`.
    Revoke(Revoke),
    /// MTSQL `SET SCOPE = "..."` — selects the dataset `D`.
    SetScope(ScopeSpec),
    /// `BEGIN [TRANSACTION]` — open a multi-statement transaction.
    Begin,
    /// `COMMIT [TRANSACTION]` — durably commit the open transaction.
    Commit,
    /// `ROLLBACK [TRANSACTION]` — undo the open transaction.
    Rollback,
}

/// A full query: a [`Select`] body plus `ORDER BY` / `LIMIT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The `SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...` body.
    pub body: Select,
    /// `ORDER BY` items (empty when absent).
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT n` if present.
    pub limit: Option<u64>,
}

impl Query {
    /// Wrap a [`Select`] body into a query without ordering or limit.
    pub fn from_select(body: Select) -> Self {
        Query {
            body,
            order_by: Vec::new(),
            limit: None,
        }
    }
}

/// The body of a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Select {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// `FROM` items (comma-separated table references, possibly join trees).
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

/// A single item of the projection list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An arbitrary expression with an optional `AS alias`.
    Expr { expr: Expr, alias: Option<String> },
}

impl SelectItem {
    /// Convenience constructor for an un-aliased expression item.
    pub fn expr(expr: Expr) -> Self {
        SelectItem::Expr { expr, alias: None }
    }

    /// Convenience constructor for an aliased expression item.
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        SelectItem::Expr {
            expr,
            alias: Some(alias.into()),
        }
    }
}

/// A table reference in the `FROM` clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableRef {
    /// A base table (or view) with an optional alias.
    Table { name: String, alias: Option<String> },
    /// A derived table `( query ) AS alias`.
    Derived { query: Box<Query>, alias: String },
    /// An explicit join of two table references.
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        /// `ON` condition; `None` only for cross joins.
        on: Option<Expr>,
    },
}

impl TableRef {
    /// A base table reference without alias.
    pub fn table(name: impl Into<String>) -> Self {
        TableRef::Table {
            name: name.into(),
            alias: None,
        }
    }

    /// A base table reference with an alias.
    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef::Table {
            name: name.into(),
            alias: Some(alias.into()),
        }
    }

    /// The name the rest of the query uses to refer to this table reference
    /// (alias if given, otherwise the table name; `None` for joins).
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableRef::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Derived { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

/// Join flavours supported by the engine and the rewriter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderByItem {
    pub expr: Expr,
    /// `true` for ascending (default), `false` for `DESC`.
    pub asc: bool,
}

/// Scalar/boolean expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference, optionally qualified (`E1.E_salary`).
    Column(ColumnRef),
    /// Literal constant.
    Literal(Literal),
    /// Binary operation.
    BinaryOp {
        left: Box<Expr>,
        op: BinaryOperator,
        right: Box<Expr>,
    },
    /// Unary operation (`NOT x`, `-x`).
    UnaryOp { op: UnaryOperator, expr: Box<Expr> },
    /// Function call — scalar UDF or aggregate, distinguished by name.
    Function(FunctionCall),
    /// `CASE [operand] WHEN ... THEN ... [ELSE ...] END`.
    Case {
        operand: Option<Box<Expr>>,
        when_then: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists { query: Box<Query>, negated: bool },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        expr: Box<Expr>,
        query: Box<Query>,
        negated: bool,
    },
    /// `expr [NOT] IN (list…)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// Scalar subquery `(SELECT ...)` producing a single value.
    ScalarSubquery(Box<Query>),
    /// `EXTRACT(field FROM expr)`.
    Extract { field: DateField, expr: Box<Expr> },
    /// `SUBSTRING(expr FROM start [FOR length])` (1-based start).
    Substring {
        expr: Box<Expr>,
        start: Box<Expr>,
        length: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        expr: Box<Expr>,
        data_type: DataType,
    },
    /// A prepared-statement parameter placeholder (`?` or `$n` in SQL),
    /// holding its 0-based parameter index. Parameters are bound to concrete
    /// values at execution time (`Statement::bind` in the mtbase client API);
    /// the rewriter and planner treat them as opaque client-format constants.
    Param(usize),
}

impl Expr {
    /// Unqualified column reference.
    pub fn col(name: impl Into<String>) -> Self {
        Expr::Column(ColumnRef {
            table: None,
            name: name.into(),
        })
    }

    /// Qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Self {
        Expr::Column(ColumnRef {
            table: Some(table.into()),
            name: name.into(),
        })
    }

    /// Integer literal.
    pub fn int(v: i64) -> Self {
        Expr::Literal(Literal::Integer(v))
    }

    /// Floating point literal.
    pub fn float(v: f64) -> Self {
        Expr::Literal(Literal::Float(v))
    }

    /// String literal.
    pub fn string(v: impl Into<String>) -> Self {
        Expr::Literal(Literal::String(v.into()))
    }

    /// Binary operation helper.
    pub fn binary(left: Expr, op: BinaryOperator, right: Expr) -> Self {
        Expr::BinaryOp {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `left = right`.
    pub fn eq(left: Expr, right: Expr) -> Self {
        Expr::binary(left, BinaryOperator::Eq, right)
    }

    /// `left AND right`.
    pub fn and(left: Expr, right: Expr) -> Self {
        Expr::binary(left, BinaryOperator::And, right)
    }

    /// Combine a list of predicates with `AND`; `None` if the list is empty.
    pub fn conjunction(mut preds: Vec<Expr>) -> Option<Expr> {
        if preds.is_empty() {
            return None;
        }
        let mut acc = preds.remove(0);
        for p in preds {
            acc = Expr::and(acc, p);
        }
        Some(acc)
    }

    /// Parameter placeholder with a 0-based index (`$1` ⇒ `Expr::param(0)`).
    pub fn param(index: usize) -> Self {
        Expr::Param(index)
    }

    /// Scalar function call helper.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Self {
        Expr::Function(FunctionCall {
            name: name.into(),
            args,
            distinct: false,
        })
    }
}

/// A reference to a column, optionally qualified by a table name or alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    pub table: Option<String>,
    pub name: String,
}

impl ColumnRef {
    /// Canonical display form (`table.name` or `name`).
    pub fn to_display(&self) -> String {
        match &self.table {
            Some(t) => format!("{t}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    Null,
    Boolean(bool),
    Integer(i64),
    Float(f64),
    String(String),
    /// `DATE 'YYYY-MM-DD'`
    Date(String),
    /// `INTERVAL 'n' unit`
    Interval {
        value: i64,
        unit: IntervalUnit,
    },
}

/// Units for interval literals (sufficient for TPC-H date arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntervalUnit {
    Day,
    Month,
    Year,
}

/// Fields usable in `EXTRACT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DateField {
    Year,
    Month,
    Day,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOperator {
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl BinaryOperator {
    /// `true` for comparison operators producing booleans.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOperator::Eq
                | BinaryOperator::NotEq
                | BinaryOperator::Lt
                | BinaryOperator::LtEq
                | BinaryOperator::Gt
                | BinaryOperator::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOperator {
    Not,
    Minus,
    Plus,
}

/// A function call (scalar or aggregate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionCall {
    pub name: String,
    pub args: Vec<Expr>,
    /// `COUNT(DISTINCT x)` style calls.
    pub distinct: bool,
}

impl FunctionCall {
    /// Whether this call is one of the standard SQL aggregate functions.
    pub fn is_aggregate(&self) -> bool {
        matches!(
            self.name.to_ascii_uppercase().as_str(),
            "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
        )
    }
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

/// MTSQL table generality (§2.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TableGenerality {
    /// Shared by all tenants (`Regions`); only comparable attributes.
    #[default]
    Global,
    /// Tenant-specific data, one logical instance per tenant.
    TenantSpecific,
}

/// MTSQL attribute comparability (Table 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Comparability {
    /// Directly comparable across tenants.
    Comparable,
    /// Needs conversion through the universal format before comparison.
    Convertible {
        to_universal: String,
        from_universal: String,
    },
    /// Makes no sense to compare across tenants (keys etc.).
    TenantSpecific,
}

/// Supported column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    Integer,
    BigInt,
    /// DECIMAL(p, s) — evaluated as double precision by the engine.
    Decimal(u8, u8),
    Double,
    Varchar(u16),
    Char(u16),
    Date,
    Boolean,
}

/// Column definition within `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
    /// MTSQL comparability; `None` means "use the default for the table's
    /// generality" (comparable for global, tenant-specific for specific).
    pub comparability: Option<Comparability>,
}

/// Table constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableConstraint {
    PrimaryKey {
        name: Option<String>,
        columns: Vec<String>,
    },
    ForeignKey {
        name: Option<String>,
        columns: Vec<String>,
        foreign_table: String,
        referred_columns: Vec<String>,
    },
    Check {
        name: Option<String>,
        expr: Expr,
    },
}

/// `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateTable {
    pub name: String,
    pub generality: TableGenerality,
    pub columns: Vec<ColumnDef>,
    pub constraints: Vec<TableConstraint>,
}

/// `CREATE VIEW` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateView {
    pub name: String,
    pub query: Query,
}

/// `CREATE FUNCTION` statement registering a (conversion) UDF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateFunction {
    pub name: String,
    pub arg_types: Vec<DataType>,
    pub returns: DataType,
    /// The SQL body as written (kept opaque; the engine binds names to native
    /// implementations).
    pub body: String,
    pub language: String,
    pub immutable: bool,
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

/// `INSERT INTO table [(cols)] VALUES ... | query`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Insert {
    pub table: String,
    pub columns: Vec<String>,
    pub source: InsertSource,
}

/// Data source of an `INSERT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Box<Query>),
}

/// `UPDATE table SET col = expr, ... [WHERE ...]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Update {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub selection: Option<Expr>,
}

/// `DELETE FROM table [WHERE ...]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delete {
    pub table: String,
    pub selection: Option<Expr>,
}

// ---------------------------------------------------------------------------
// DCL + scope
// ---------------------------------------------------------------------------

/// Access privileges (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Privilege {
    Read,
    Insert,
    Update,
    Delete,
    Grant,
    Revoke,
}

/// The object a `GRANT`/`REVOKE` applies to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrantObject {
    Database,
    Table(String),
}

/// Who receives (or loses) the privileges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Grantee {
    Tenant(TenantId),
    /// `ALL` — interpreted w.r.t. the current dataset `D`.
    All,
}

/// `GRANT privileges ON object TO grantee`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grant {
    pub privileges: Vec<Privilege>,
    pub object: GrantObject,
    pub grantee: Grantee,
}

/// `REVOKE privileges ON object FROM grantee`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Revoke {
    pub privileges: Vec<Privilege>,
    pub object: GrantObject,
    pub grantee: Grantee,
}

/// The dataset selector `D` set via `SET SCOPE = "..."` (§2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScopeSpec {
    /// `IN (t1, t2, ...)`. The paper defines the *empty* `IN ()` list to mean
    /// "all tenants in the database"; we model that case separately as
    /// [`ScopeSpec::AllTenants`] to keep intent explicit.
    Simple(Vec<TenantId>),
    /// `IN ()` — every tenant present in the database.
    AllTenants,
    /// Complex scope: every tenant owning at least one record that satisfies
    /// the `FROM`/`WHERE` sub-query is part of `D`.
    Complex {
        from: Vec<TableRef>,
        selection: Option<Expr>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_helpers_build_expected_shapes() {
        let e = Expr::eq(Expr::col("a"), Expr::int(1));
        match e {
            Expr::BinaryOp { op, .. } => assert_eq!(op, BinaryOperator::Eq),
            _ => panic!("expected binary op"),
        }
    }

    #[test]
    fn conjunction_of_empty_list_is_none() {
        assert_eq!(Expr::conjunction(vec![]), None);
    }

    #[test]
    fn conjunction_folds_left() {
        let c = Expr::conjunction(vec![Expr::col("a"), Expr::col("b"), Expr::col("c")]).unwrap();
        // ((a AND b) AND c)
        match c {
            Expr::BinaryOp { left, op, .. } => {
                assert_eq!(op, BinaryOperator::And);
                assert!(matches!(*left, Expr::BinaryOp { .. }));
            }
            _ => panic!("expected conjunction"),
        }
    }

    #[test]
    fn aggregate_detection() {
        let agg = FunctionCall {
            name: "sum".into(),
            args: vec![Expr::col("x")],
            distinct: false,
        };
        assert!(agg.is_aggregate());
        let udf = FunctionCall {
            name: "currencyToUniversal".into(),
            args: vec![],
            distinct: false,
        };
        assert!(!udf.is_aggregate());
    }

    #[test]
    fn binding_name_prefers_alias() {
        assert_eq!(
            TableRef::aliased("Employees", "E1").binding_name(),
            Some("E1")
        );
        assert_eq!(TableRef::table("Roles").binding_name(), Some("Roles"));
    }

    #[test]
    fn table_generality_defaults_to_global() {
        assert_eq!(TableGenerality::default(), TableGenerality::Global);
    }
}

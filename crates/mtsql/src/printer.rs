//! SQL pretty-printer: `Display` implementations producing parseable SQL text.
//!
//! Printing then re-parsing any statement yields an equal AST (round-trip
//! property, covered by tests and by property tests in `tests/roundtrip.rs`).

use std::fmt;

use crate::ast::*;

fn join<T: fmt::Display>(items: &[T], sep: &str) -> String {
    items
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(sep)
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(q) => write!(f, "{q}"),
            Statement::Explain(q) => write!(f, "EXPLAIN {q}"),
            Statement::CreateTable(ct) => write!(f, "{ct}"),
            Statement::CreateView(cv) => write!(f, "CREATE VIEW {} AS {}", cv.name, cv.query),
            Statement::CreateFunction(cf) => write!(f, "{cf}"),
            Statement::DropTable { name, if_exists } => {
                if *if_exists {
                    write!(f, "DROP TABLE IF EXISTS {name}")
                } else {
                    write!(f, "DROP TABLE {name}")
                }
            }
            Statement::DropView { name, if_exists } => {
                if *if_exists {
                    write!(f, "DROP VIEW IF EXISTS {name}")
                } else {
                    write!(f, "DROP VIEW {name}")
                }
            }
            Statement::Insert(i) => write!(f, "{i}"),
            Statement::Update(u) => write!(f, "{u}"),
            Statement::Delete(d) => write!(f, "{d}"),
            Statement::Grant(g) => write!(f, "{g}"),
            Statement::Revoke(r) => write!(f, "{r}"),
            Statement::SetScope(s) => write!(f, "SET SCOPE = \"{s}\""),
            Statement::Begin => write!(f, "BEGIN"),
            Statement::Commit => write!(f, "COMMIT"),
            Statement::Rollback => write!(f, "ROLLBACK"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY {}", join(&self.order_by, ", "))?;
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        write!(f, "{}", join(&self.projection, ", "))?;
        if !self.from.is_empty() {
            write!(f, " FROM {}", join(&self.from, ", "))?;
        }
        if let Some(sel) = &self.selection {
            write!(f, " WHERE {sel}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", join(&self.group_by, ", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => write!(f, "{expr} AS {a}"),
                None => write!(f, "{expr}"),
            },
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias } => match alias {
                Some(a) => write!(f, "{name} AS {a}"),
                None => write!(f, "{name}"),
            },
            TableRef::Derived { query, alias } => write!(f, "({query}) AS {alias}"),
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let kw = match kind {
                    JoinKind::Inner => "JOIN",
                    JoinKind::Left => "LEFT OUTER JOIN",
                    JoinKind::Cross => "CROSS JOIN",
                };
                write!(f, "{left} {kw} {right}")?;
                if let Some(cond) = on {
                    write!(f, " ON {cond}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for OrderByItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if !self.asc {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{}", c.to_display()),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::BinaryOp { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::UnaryOp { op, expr } => match op {
                UnaryOperator::Not => write!(f, "(NOT {expr})"),
                UnaryOperator::Minus => write!(f, "(- {expr})"),
                UnaryOperator::Plus => write!(f, "(+ {expr})"),
            },
            Expr::Function(fc) => {
                write!(f, "{}(", fc.name)?;
                if fc.args.is_empty() && fc.is_aggregate() {
                    write!(f, "*")?;
                } else {
                    if fc.distinct {
                        write!(f, "DISTINCT ")?;
                    }
                    write!(f, "{}", join(&fc.args, ", "))?;
                }
                write!(f, ")")
            }
            Expr::Case {
                operand,
                when_then,
                else_expr,
            } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in when_then {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Exists { query, negated } => {
                if *negated {
                    write!(f, "NOT EXISTS ({query})")
                } else {
                    write!(f, "EXISTS ({query})")
                }
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                if *negated {
                    write!(f, "{expr} NOT IN ({query})")
                } else {
                    write!(f, "{expr} IN ({query})")
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                if *negated {
                    write!(f, "{expr} NOT IN ({})", join(list, ", "))
                } else {
                    write!(f, "{expr} IN ({})", join(list, ", "))
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                if *negated {
                    write!(f, "{expr} NOT BETWEEN {low} AND {high}")
                } else {
                    write!(f, "{expr} BETWEEN {low} AND {high}")
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                if *negated {
                    write!(f, "{expr} NOT LIKE {pattern}")
                } else {
                    write!(f, "{expr} LIKE {pattern}")
                }
            }
            Expr::IsNull { expr, negated } => {
                if *negated {
                    write!(f, "{expr} IS NOT NULL")
                } else {
                    write!(f, "{expr} IS NULL")
                }
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::Extract { field, expr } => write!(f, "EXTRACT({field} FROM {expr})"),
            Expr::Substring {
                expr,
                start,
                length,
            } => match length {
                Some(len) => write!(f, "SUBSTRING({expr} FROM {start} FOR {len})"),
                None => write!(f, "SUBSTRING({expr} FROM {start})"),
            },
            Expr::Cast { expr, data_type } => write!(f, "CAST({expr} AS {data_type})"),
            // Printed 1-based so the text re-parses to the same index.
            Expr::Param(index) => write!(f, "${}", index + 1),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "NULL"),
            Literal::Boolean(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Integer(i) => write!(f, "{i}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Date(d) => write!(f, "DATE '{d}'"),
            Literal::Interval { value, unit } => write!(f, "INTERVAL '{value}' {unit}"),
        }
    }
}

impl fmt::Display for IntervalUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalUnit::Day => write!(f, "DAY"),
            IntervalUnit::Month => write!(f, "MONTH"),
            IntervalUnit::Year => write!(f, "YEAR"),
        }
    }
}

impl fmt::Display for DateField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DateField::Year => write!(f, "YEAR"),
            DateField::Month => write!(f, "MONTH"),
            DateField::Day => write!(f, "DAY"),
        }
    }
}

impl fmt::Display for BinaryOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOperator::Plus => "+",
            BinaryOperator::Minus => "-",
            BinaryOperator::Multiply => "*",
            BinaryOperator::Divide => "/",
            BinaryOperator::Modulo => "%",
            BinaryOperator::Eq => "=",
            BinaryOperator::NotEq => "<>",
            BinaryOperator::Lt => "<",
            BinaryOperator::LtEq => "<=",
            BinaryOperator::Gt => ">",
            BinaryOperator::GtEq => ">=",
            BinaryOperator::And => "AND",
            BinaryOperator::Or => "OR",
            BinaryOperator::Concat => "||",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Integer => write!(f, "INTEGER"),
            DataType::BigInt => write!(f, "BIGINT"),
            DataType::Decimal(p, s) => write!(f, "DECIMAL({p}, {s})"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Varchar(n) => write!(f, "VARCHAR({n})"),
            DataType::Char(n) => write!(f, "CHAR({n})"),
            DataType::Date => write!(f, "DATE"),
            DataType::Boolean => write!(f, "BOOLEAN"),
        }
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE {}", self.name)?;
        match self.generality {
            TableGenerality::Global => write!(f, " GLOBAL")?,
            TableGenerality::TenantSpecific => write!(f, " SPECIFIC")?,
        }
        write!(f, " (")?;
        let mut first = true;
        for c in &self.columns {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        for tc in &self.constraints {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{tc}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for ColumnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)?;
        if self.not_null {
            write!(f, " NOT NULL")?;
        }
        match &self.comparability {
            None => {}
            Some(Comparability::Comparable) => write!(f, " COMPARABLE")?,
            Some(Comparability::TenantSpecific) => write!(f, " SPECIFIC")?,
            Some(Comparability::Convertible {
                to_universal,
                from_universal,
            }) => write!(f, " CONVERTIBLE @{to_universal} @{from_universal}")?,
        }
        Ok(())
    }
}

impl fmt::Display for TableConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableConstraint::PrimaryKey { name, columns } => {
                if let Some(n) = name {
                    write!(f, "CONSTRAINT {n} ")?;
                }
                write!(f, "PRIMARY KEY ({})", columns.join(", "))
            }
            TableConstraint::ForeignKey {
                name,
                columns,
                foreign_table,
                referred_columns,
            } => {
                if let Some(n) = name {
                    write!(f, "CONSTRAINT {n} ")?;
                }
                write!(
                    f,
                    "FOREIGN KEY ({}) REFERENCES {foreign_table} ({})",
                    columns.join(", "),
                    referred_columns.join(", ")
                )
            }
            TableConstraint::Check { name, expr } => {
                if let Some(n) = name {
                    write!(f, "CONSTRAINT {n} ")?;
                }
                write!(f, "CHECK ({expr})")
            }
        }
    }
}

impl fmt::Display for CreateFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CREATE FUNCTION {} ({}) RETURNS {} AS '{}' LANGUAGE {}",
            self.name,
            join(&self.arg_types, ", "),
            self.returns,
            self.body.replace('\'', "''"),
            self.language
        )?;
        if self.immutable {
            write!(f, " IMMUTABLE")?;
        }
        Ok(())
    }
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        match &self.source {
            InsertSource::Values(rows) => {
                write!(f, " VALUES ")?;
                let rendered: Vec<String> = rows
                    .iter()
                    .map(|r| format!("({})", join(r, ", ")))
                    .collect();
                write!(f, "{}", rendered.join(", "))
            }
            InsertSource::Query(q) => write!(f, " ({q})"),
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        let assigns: Vec<String> = self
            .assignments
            .iter()
            .map(|(c, e)| format!("{c} = {e}"))
            .collect();
        write!(f, "{}", assigns.join(", "))?;
        if let Some(sel) = &self.selection {
            write!(f, " WHERE {sel}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Delete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(sel) = &self.selection {
            write!(f, " WHERE {sel}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Privilege::Read => "READ",
            Privilege::Insert => "INSERT",
            Privilege::Update => "UPDATE",
            Privilege::Delete => "DELETE",
            Privilege::Grant => "GRANT",
            Privilege::Revoke => "REVOKE",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for GrantObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrantObject::Database => write!(f, "DATABASE"),
            GrantObject::Table(t) => write!(f, "{t}"),
        }
    }
}

impl fmt::Display for Grantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Grantee::Tenant(t) => write!(f, "{t}"),
            Grantee::All => write!(f, "ALL"),
        }
    }
}

impl fmt::Display for Grant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GRANT {} ON {} TO {}",
            join(&self.privileges, ", "),
            self.object,
            self.grantee
        )
    }
}

impl fmt::Display for Revoke {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "REVOKE {} ON {} FROM {}",
            join(&self.privileges, ", "),
            self.object,
            self.grantee
        )
    }
}

impl fmt::Display for ScopeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScopeSpec::Simple(ids) => {
                let rendered: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
                write!(f, "IN ({})", rendered.join(", "))
            }
            ScopeSpec::AllTenants => write!(f, "IN ()"),
            ScopeSpec::Complex { from, selection } => {
                write!(f, "FROM {}", join(from, ", "))?;
                if let Some(sel) = selection {
                    write!(f, " WHERE {sel}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_statement};

    fn roundtrip_query(sql: &str) {
        let q1 = parse_query(sql).unwrap();
        let printed = q1.to_string();
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("reparse of `{printed}`: {e}"));
        assert_eq!(q1, q2, "round-trip mismatch for {sql}");
    }

    #[test]
    fn roundtrips_selected_queries() {
        roundtrip_query("SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY a DESC LIMIT 5");
        roundtrip_query(
            "SELECT COUNT(DISTINCT a), SUM(b * (1 - c)) FROM t GROUP BY d HAVING SUM(b) > 10",
        );
        roundtrip_query("SELECT x.a FROM (SELECT a FROM t WHERE a IN (1, 2, 3)) AS x");
        roundtrip_query(
            "SELECT e.name FROM emp e LEFT OUTER JOIN dept d ON e.dept_id = d.id WHERE d.name LIKE 'S%'",
        );
        roundtrip_query(
            "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'many' END FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a)",
        );
        roundtrip_query(
            "SELECT EXTRACT(YEAR FROM o_orderdate), SUBSTRING(c_phone FROM 1 FOR 2) FROM orders, customer",
        );
        roundtrip_query("SELECT a FROM t WHERE d < DATE '1998-12-01' - INTERVAL '90' DAY");
    }

    #[test]
    fn roundtrips_statements() {
        for sql in [
            "GRANT READ ON Employees TO 42",
            "REVOKE READ, UPDATE ON Employees FROM ALL",
            "SET SCOPE = \"IN (1, 3, 42)\"",
            "SET SCOPE = \"IN ()\"",
            "INSERT INTO t (a, b) VALUES (1, 'x''y')",
            "UPDATE t SET a = (a + 1) WHERE b = 2",
            "DELETE FROM t WHERE a IS NULL",
            "DROP TABLE IF EXISTS t",
            "CREATE VIEW v AS SELECT a FROM t",
        ] {
            let s1 = parse_statement(sql).unwrap();
            let printed = s1.to_string();
            let s2 =
                parse_statement(&printed).unwrap_or_else(|e| panic!("reparse of `{printed}`: {e}"));
            assert_eq!(s1, s2, "round-trip mismatch for {sql}");
        }
    }

    #[test]
    fn create_table_roundtrip() {
        let sql = "CREATE TABLE Employees SPECIFIC (E_emp_id INTEGER NOT NULL SPECIFIC, \
                   E_salary DECIMAL(15, 2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal, \
                   CONSTRAINT pk_emp PRIMARY KEY (E_emp_id))";
        let s1 = parse_statement(sql).unwrap();
        let s2 = parse_statement(&s1.to_string()).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn string_literal_escaping() {
        assert_eq!(Literal::String("it's".into()).to_string(), "'it''s'");
    }
}

//! Recursive-descent parser for SQL and MTSQL statements.

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parse a single statement (trailing `;` allowed).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let mut parser = Parser::new(input)?;
    let stmt = parser.parse_statement()?;
    parser.consume_optional_semicolons();
    parser.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated list of statements.
pub fn parse_statements(input: &str) -> Result<Vec<Statement>> {
    let mut parser = Parser::new(input)?;
    let mut out = Vec::new();
    loop {
        parser.consume_optional_semicolons();
        if parser.at_eof() {
            return Ok(out);
        }
        out.push(parser.parse_statement()?);
    }
}

/// Parse a query (`SELECT ...`).
pub fn parse_query(input: &str) -> Result<Query> {
    let mut parser = Parser::new(input)?;
    let q = parser.parse_query()?;
    parser.consume_optional_semicolons();
    parser.expect_eof()?;
    Ok(q)
}

/// Parse a standalone expression (useful in tests and for scope predicates).
pub fn parse_expression(input: &str) -> Result<Expr> {
    let mut parser = Parser::new(input)?;
    let e = parser.parse_expr()?;
    parser.expect_eof()?;
    Ok(e)
}

/// Parameter placeholder style seen so far in one statement. The two styles
/// cannot be mixed: `?` auto-numbers left to right while `$n` is explicit,
/// and combining them would silently alias positions (PostgreSQL rejects
/// the mix too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParamStyle {
    Question,
    Dollar,
}

/// The parser state: a token stream and a cursor.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Next auto-assigned index for `?` placeholders (each `?` takes the next
    /// position, matching the JDBC/ODBC convention).
    next_param: usize,
    /// Which placeholder style this statement uses, once one was seen.
    param_style: Option<ParamStyle>,
}

impl Parser {
    /// Tokenize `input` and create a parser over it.
    pub fn new(input: &str) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
            next_param: 0,
            param_style: None,
        })
    }

    /// Record the placeholder style of the statement, rejecting a mix.
    fn note_param_style(&mut self, style: ParamStyle) -> Result<()> {
        match self.param_style {
            None => {
                self.param_style = Some(style);
                Ok(())
            }
            Some(seen) if seen == style => Ok(()),
            Some(_) => Err(ParseError::at(
                "cannot mix `?` and `$n` parameter placeholders in one statement",
                self.offset(),
            )),
        }
    }

    // -- token helpers ------------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].offset
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(ParseError::at(
                format!("expected end of input, found {}", self.peek()),
                self.offset(),
            ))
        }
    }

    fn consume_optional_semicolons(&mut self) {
        while matches!(self.peek(), TokenKind::Semicolon) {
            self.advance();
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if k == kw)
    }

    fn keyword_ahead_is(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_ahead(n), TokenKind::Keyword(k) if k == kw)
    }

    /// Consume the given keyword if it is next; returns whether it was there.
    fn accept_keyword(&mut self, kw: &str) -> bool {
        if self.keyword_is(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.accept_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::at(
                format!("expected keyword `{kw}`, found {}", self.peek()),
                self.offset(),
            ))
        }
    }

    fn accept(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.accept(kind) {
            Ok(())
        } else {
            Err(ParseError::at(
                format!("expected {kind}, found {}", self.peek()),
                self.offset(),
            ))
        }
    }

    /// Consume an identifier (also accepting keywords that commonly double as
    /// identifiers, e.g. a column called `date`).
    fn expect_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(ParseError::at(
                format!("expected identifier, found {other}"),
                self.offset(),
            )),
        }
    }

    fn expect_number_i64(&mut self) -> Result<i64> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                n.parse::<i64>().map_err(|_| {
                    ParseError::at(format!("expected integer, found `{n}`"), self.offset())
                })
            }
            other => Err(ParseError::at(
                format!("expected number, found {other}"),
                self.offset(),
            )),
        }
    }

    // -- statements ---------------------------------------------------------

    /// Parse one statement starting at the current position.
    pub fn parse_statement(&mut self) -> Result<Statement> {
        match self.peek().clone() {
            TokenKind::Keyword(k) => match k.as_str() {
                "SELECT" => Ok(Statement::Select(self.parse_query()?)),
                "EXPLAIN" => {
                    self.advance();
                    Ok(Statement::Explain(self.parse_query()?))
                }
                "CREATE" => self.parse_create(),
                "DROP" => self.parse_drop(),
                "INSERT" => self.parse_insert(),
                "UPDATE" => self.parse_update(),
                "DELETE" => self.parse_delete(),
                "GRANT" => self.parse_grant(),
                "REVOKE" => self.parse_revoke(),
                "SET" => self.parse_set_scope(),
                "BEGIN" => {
                    self.advance();
                    self.accept_keyword("TRANSACTION");
                    Ok(Statement::Begin)
                }
                "COMMIT" => {
                    self.advance();
                    self.accept_keyword("TRANSACTION");
                    Ok(Statement::Commit)
                }
                "ROLLBACK" => {
                    self.advance();
                    self.accept_keyword("TRANSACTION");
                    Ok(Statement::Rollback)
                }
                other => Err(ParseError::at(
                    format!("unexpected statement keyword `{other}`"),
                    self.offset(),
                )),
            },
            other => Err(ParseError::at(
                format!("expected a statement, found {other}"),
                self.offset(),
            )),
        }
    }

    // -- queries ------------------------------------------------------------

    /// Parse a full query: SELECT body plus ORDER BY / LIMIT.
    pub fn parse_query(&mut self) -> Result<Query> {
        let body = self.parse_select()?;
        let mut order_by = Vec::new();
        if self.accept_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.accept_keyword("DESC") {
                    false
                } else {
                    self.accept_keyword("ASC");
                    true
                };
                order_by.push(OrderByItem { expr, asc });
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.accept_keyword("LIMIT") {
            limit = Some(self.expect_number_i64()? as u64);
        }
        Ok(Query {
            body,
            order_by,
            limit,
        })
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_keyword("SELECT")?;
        let distinct = self.accept_keyword("DISTINCT");
        if !distinct {
            self.accept_keyword("ALL");
        }
        let mut projection = Vec::new();
        loop {
            projection.push(self.parse_select_item()?);
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.accept_keyword("FROM") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let selection = if self.accept_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.accept_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.accept_keyword("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if matches!(self.peek(), TokenKind::Star) {
            self.advance();
            return Ok(SelectItem::Wildcard);
        }
        // alias.*
        if let TokenKind::Ident(name) = self.peek().clone() {
            if matches!(self.peek_ahead(1), TokenKind::Dot)
                && matches!(self.peek_ahead(2), TokenKind::Star)
            {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.accept_keyword("AS") {
            Some(self.expect_ident()?)
        } else if let TokenKind::Ident(name) = self.peek().clone() {
            // implicit alias: `SELECT a b FROM …` style. Only accept when the
            // identifier is not followed by something making it part of an
            // expression (we already finished the expression).
            self.advance();
            Some(name)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_factor()?;
        loop {
            let kind = if self.keyword_is("JOIN") || self.keyword_is("INNER") {
                self.accept_keyword("INNER");
                self.expect_keyword("JOIN")?;
                JoinKind::Inner
            } else if self.keyword_is("LEFT") {
                self.advance();
                self.accept_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::Left
            } else if self.keyword_is("CROSS") {
                self.advance();
                self.expect_keyword("JOIN")?;
                JoinKind::Cross
            } else {
                return Ok(left);
            };
            let right = self.parse_table_factor()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_keyword("ON")?;
                Some(self.parse_expr()?)
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
    }

    fn parse_table_factor(&mut self) -> Result<TableRef> {
        if self.accept(&TokenKind::LParen) {
            let query = self.parse_query()?;
            self.expect(&TokenKind::RParen)?;
            self.accept_keyword("AS");
            let alias = self.expect_ident()?;
            return Ok(TableRef::Derived {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.expect_ident()?;
        let alias = if self.accept_keyword("AS") {
            Some(self.expect_ident()?)
        } else if let TokenKind::Ident(alias) = self.peek().clone() {
            self.advance();
            Some(alias)
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    // -- expressions --------------------------------------------------------

    /// Parse an expression (lowest precedence: `OR`).
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.accept_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOperator::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.accept_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOperator::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.keyword_is("NOT") && !self.keyword_ahead_is(1, "EXISTS") {
            self.advance();
            let inner = self.parse_not()?;
            return Ok(Expr::UnaryOp {
                op: UnaryOperator::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // postfix predicates: IS NULL, BETWEEN, IN, LIKE, NOT IN/LIKE/BETWEEN
        if self.accept_keyword("IS") {
            let negated = self.accept_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.keyword_is("NOT")
            && (self.keyword_ahead_is(1, "IN")
                || self.keyword_ahead_is(1, "LIKE")
                || self.keyword_ahead_is(1, "BETWEEN"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.accept_keyword("IN") {
            self.expect(&TokenKind::LParen)?;
            if self.keyword_is("SELECT") {
                let q = self.parse_query()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = Vec::new();
            if !matches!(self.peek(), TokenKind::RParen) {
                loop {
                    list.push(self.parse_expr()?);
                    if !self.accept(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.accept_keyword("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.accept_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(ParseError::at(
                "expected IN, LIKE or BETWEEN after NOT",
                self.offset(),
            ));
        }
        let op = match self.peek() {
            TokenKind::Eq => BinaryOperator::Eq,
            TokenKind::NotEq => BinaryOperator::NotEq,
            TokenKind::Lt => BinaryOperator::Lt,
            TokenKind::LtEq => BinaryOperator::LtEq,
            TokenKind::Gt => BinaryOperator::Gt,
            TokenKind::GtEq => BinaryOperator::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_additive()?;
        Ok(Expr::binary(left, op, right))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOperator::Plus,
                TokenKind::Minus => BinaryOperator::Minus,
                TokenKind::Concat => BinaryOperator::Concat,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOperator::Multiply,
                TokenKind::Slash => BinaryOperator::Divide,
                TokenKind::Percent => BinaryOperator::Modulo,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                self.advance();
                let inner = self.parse_unary()?;
                Ok(Expr::UnaryOp {
                    op: UnaryOperator::Minus,
                    expr: Box::new(inner),
                })
            }
            TokenKind::Plus => {
                self.advance();
                self.parse_unary()
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                if n.contains('.') {
                    let v: f64 = n
                        .parse()
                        .map_err(|_| ParseError::at(format!("bad number `{n}`"), self.offset()))?;
                    Ok(Expr::Literal(Literal::Float(v)))
                } else {
                    let v: i64 = n
                        .parse()
                        .map_err(|_| ParseError::at(format!("bad number `{n}`"), self.offset()))?;
                    Ok(Expr::Literal(Literal::Integer(v)))
                }
            }
            TokenKind::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            TokenKind::Question => {
                self.advance();
                self.note_param_style(ParamStyle::Question)?;
                let index = self.next_param;
                self.next_param += 1;
                Ok(Expr::Param(index))
            }
            TokenKind::DollarParam(n) => {
                self.advance();
                self.note_param_style(ParamStyle::Dollar)?;
                if n == 0 {
                    return Err(ParseError::at(
                        "parameter numbers start at $1",
                        self.offset(),
                    ));
                }
                // `$n` is 1-based in SQL; indices are 0-based internally.
                Ok(Expr::Param((n - 1) as usize))
            }
            TokenKind::Keyword(kw) => match kw.as_str() {
                "NULL" => {
                    self.advance();
                    Ok(Expr::Literal(Literal::Null))
                }
                "TRUE" => {
                    self.advance();
                    Ok(Expr::Literal(Literal::Boolean(true)))
                }
                "FALSE" => {
                    self.advance();
                    Ok(Expr::Literal(Literal::Boolean(false)))
                }
                "DATE" => {
                    self.advance();
                    match self.peek().clone() {
                        TokenKind::StringLit(s) => {
                            self.advance();
                            Ok(Expr::Literal(Literal::Date(s)))
                        }
                        other => Err(ParseError::at(
                            format!("expected date string, found {other}"),
                            self.offset(),
                        )),
                    }
                }
                "INTERVAL" => {
                    self.advance();
                    let value = match self.peek().clone() {
                        TokenKind::StringLit(s) => {
                            self.advance();
                            s.trim().parse::<i64>().map_err(|_| {
                                ParseError::at(format!("bad interval value `{s}`"), self.offset())
                            })?
                        }
                        TokenKind::Number(n) => {
                            self.advance();
                            n.parse::<i64>().map_err(|_| {
                                ParseError::at(format!("bad interval value `{n}`"), self.offset())
                            })?
                        }
                        other => {
                            return Err(ParseError::at(
                                format!("expected interval value, found {other}"),
                                self.offset(),
                            ))
                        }
                    };
                    let unit_word = self.expect_ident()?.to_ascii_uppercase();
                    let unit = match unit_word.as_str() {
                        "DAY" | "DAYS" => IntervalUnit::Day,
                        "MONTH" | "MONTHS" => IntervalUnit::Month,
                        "YEAR" | "YEARS" => IntervalUnit::Year,
                        other => {
                            return Err(ParseError::at(
                                format!("unsupported interval unit `{other}`"),
                                self.offset(),
                            ))
                        }
                    };
                    Ok(Expr::Literal(Literal::Interval { value, unit }))
                }
                "CASE" => self.parse_case(),
                "EXISTS" => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let q = self.parse_query()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Exists {
                        query: Box::new(q),
                        negated: false,
                    })
                }
                "NOT" => {
                    // NOT EXISTS
                    self.advance();
                    self.expect_keyword("EXISTS")?;
                    self.expect(&TokenKind::LParen)?;
                    let q = self.parse_query()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Exists {
                        query: Box::new(q),
                        negated: true,
                    })
                }
                "CAST" => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let inner = self.parse_expr()?;
                    self.expect_keyword("AS")?;
                    let data_type = self.parse_data_type()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Cast {
                        expr: Box::new(inner),
                        data_type,
                    })
                }
                "CONCAT" => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let mut args = Vec::new();
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.accept(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::call("CONCAT", args))
                }
                other => Err(ParseError::at(
                    format!("unexpected keyword `{other}` in expression"),
                    self.offset(),
                )),
            },
            TokenKind::LParen => {
                self.advance();
                if self.keyword_is("SELECT") {
                    let q = self.parse_query()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => self.parse_ident_led(name),
            other => Err(ParseError::at(
                format!("unexpected {other} in expression"),
                self.offset(),
            )),
        }
    }

    /// Parse an expression starting with an identifier: column reference,
    /// qualified column, function call, `EXTRACT`, `SUBSTRING`.
    fn parse_ident_led(&mut self, name: String) -> Result<Expr> {
        self.advance();
        let upper = name.to_ascii_uppercase();
        if matches!(self.peek(), TokenKind::LParen) {
            self.advance();
            return match upper.as_str() {
                "EXTRACT" => {
                    // EXTRACT(YEAR FROM expr)
                    let field_word = self.expect_ident()?.to_ascii_uppercase();
                    let field = match field_word.as_str() {
                        "YEAR" => DateField::Year,
                        "MONTH" => DateField::Month,
                        "DAY" => DateField::Day,
                        other => {
                            return Err(ParseError::at(
                                format!("unsupported EXTRACT field `{other}`"),
                                self.offset(),
                            ))
                        }
                    };
                    self.expect_keyword("FROM")?;
                    let inner = self.parse_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Extract {
                        field,
                        expr: Box::new(inner),
                    })
                }
                "SUBSTRING" | "SUBSTR" => {
                    let inner = self.parse_expr()?;
                    let (start, length) = if self.accept_keyword("FROM") {
                        let start = self.parse_expr()?;
                        let length = if self.accept_keyword("FOR") || self.accept(&TokenKind::Comma)
                        {
                            Some(Box::new(self.parse_expr()?))
                        } else {
                            None
                        };
                        (start, length)
                    } else {
                        self.expect(&TokenKind::Comma)?;
                        let start = self.parse_expr()?;
                        let length = if self.accept(&TokenKind::Comma) {
                            Some(Box::new(self.parse_expr()?))
                        } else {
                            None
                        };
                        (start, length)
                    };
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Substring {
                        expr: Box::new(inner),
                        start: Box::new(start),
                        length,
                    })
                }
                _ => {
                    // function call, possibly COUNT(*) or DISTINCT argument
                    let mut distinct = false;
                    let mut args = Vec::new();
                    if matches!(self.peek(), TokenKind::Star) {
                        self.advance();
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::Function(FunctionCall {
                            name,
                            args,
                            distinct,
                        }));
                    }
                    if !matches!(self.peek(), TokenKind::RParen) {
                        distinct = self.accept_keyword("DISTINCT");
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.accept(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Function(FunctionCall {
                        name,
                        args,
                        distinct,
                    }))
                }
            };
        }
        if matches!(self.peek(), TokenKind::Dot) {
            self.advance();
            let col = self.expect_ident()?;
            return Ok(Expr::Column(ColumnRef {
                table: Some(name),
                name: col,
            }));
        }
        Ok(Expr::Column(ColumnRef { table: None, name }))
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_keyword("CASE")?;
        let operand = if self.keyword_is("WHEN") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut when_then = Vec::new();
        while self.accept_keyword("WHEN") {
            let cond = self.parse_expr()?;
            self.expect_keyword("THEN")?;
            let value = self.parse_expr()?;
            when_then.push((cond, value));
        }
        let else_expr = if self.accept_keyword("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case {
            operand,
            when_then,
            else_expr,
        })
    }

    // -- DDL ----------------------------------------------------------------

    fn parse_create(&mut self) -> Result<Statement> {
        self.expect_keyword("CREATE")?;
        if self.accept_keyword("TABLE") {
            return self.parse_create_table();
        }
        if self.accept_keyword("VIEW") {
            let name = self.expect_ident()?;
            self.expect_keyword("AS")?;
            let query = self.parse_query()?;
            return Ok(Statement::CreateView(CreateView { name, query }));
        }
        if self.accept_keyword("FUNCTION") {
            return self.parse_create_function();
        }
        Err(ParseError::at(
            format!(
                "expected TABLE, VIEW or FUNCTION after CREATE, found {}",
                self.peek()
            ),
            self.offset(),
        ))
    }

    fn parse_create_table(&mut self) -> Result<Statement> {
        let name = self.expect_ident()?;
        let generality = if self.accept_keyword("SPECIFIC") {
            TableGenerality::TenantSpecific
        } else {
            self.accept_keyword("GLOBAL");
            TableGenerality::Global
        };
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.keyword_is("CONSTRAINT")
                || self.keyword_is("PRIMARY")
                || self.keyword_is("FOREIGN")
                || self.keyword_is("CHECK")
            {
                constraints.push(self.parse_table_constraint()?);
            } else {
                columns.push(self.parse_column_def()?);
            }
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            generality,
            columns,
            constraints,
        }))
    }

    fn parse_column_def(&mut self) -> Result<ColumnDef> {
        let name = self.expect_ident()?;
        let data_type = self.parse_data_type()?;
        let mut not_null = false;
        let mut comparability = None;
        loop {
            if self.keyword_is("NOT") && self.keyword_ahead_is(1, "NULL") {
                self.advance();
                self.advance();
                not_null = true;
            } else if self.accept_keyword("COMPARABLE") {
                comparability = Some(Comparability::Comparable);
            } else if self.accept_keyword("SPECIFIC") {
                comparability = Some(Comparability::TenantSpecific);
            } else if self.accept_keyword("CONVERTIBLE") {
                let to = match self.peek().clone() {
                    TokenKind::AtIdent(f) => {
                        self.advance();
                        f
                    }
                    other => {
                        return Err(ParseError::at(
                            format!("expected @toUniversal function, found {other}"),
                            self.offset(),
                        ))
                    }
                };
                let from = match self.peek().clone() {
                    TokenKind::AtIdent(f) => {
                        self.advance();
                        f
                    }
                    other => {
                        return Err(ParseError::at(
                            format!("expected @fromUniversal function, found {other}"),
                            self.offset(),
                        ))
                    }
                };
                comparability = Some(Comparability::Convertible {
                    to_universal: to,
                    from_universal: from,
                });
            } else if self.accept_keyword("DEFAULT") {
                // consume and ignore a default literal
                let _ = self.parse_expr()?;
            } else {
                break;
            }
        }
        Ok(ColumnDef {
            name,
            data_type,
            not_null,
            comparability,
        })
    }

    fn parse_data_type(&mut self) -> Result<DataType> {
        let word = match self.peek().clone() {
            TokenKind::Ident(w) => {
                self.advance();
                w.to_ascii_uppercase()
            }
            TokenKind::Keyword(k) if k == "DATE" => {
                self.advance();
                "DATE".to_string()
            }
            other => {
                return Err(ParseError::at(
                    format!("expected data type, found {other}"),
                    self.offset(),
                ))
            }
        };
        let ty = match word.as_str() {
            "INTEGER" | "INT" => DataType::Integer,
            "BIGINT" => DataType::BigInt,
            "DOUBLE" | "FLOAT" | "REAL" => DataType::Double,
            "BOOLEAN" | "BOOL" => DataType::Boolean,
            "DATE" => DataType::Date,
            "DECIMAL" | "NUMERIC" => {
                let (p, s) = if self.accept(&TokenKind::LParen) {
                    let p = self.expect_number_i64()? as u8;
                    let s = if self.accept(&TokenKind::Comma) {
                        self.expect_number_i64()? as u8
                    } else {
                        0
                    };
                    self.expect(&TokenKind::RParen)?;
                    (p, s)
                } else {
                    (15, 2)
                };
                DataType::Decimal(p, s)
            }
            "VARCHAR" => {
                let n = if self.accept(&TokenKind::LParen) {
                    let n = self.expect_number_i64()? as u16;
                    self.expect(&TokenKind::RParen)?;
                    n
                } else {
                    255
                };
                DataType::Varchar(n)
            }
            "CHAR" | "CHARACTER" => {
                let n = if self.accept(&TokenKind::LParen) {
                    let n = self.expect_number_i64()? as u16;
                    self.expect(&TokenKind::RParen)?;
                    n
                } else {
                    1
                };
                DataType::Char(n)
            }
            other => {
                return Err(ParseError::at(
                    format!("unsupported data type `{other}`"),
                    self.offset(),
                ))
            }
        };
        Ok(ty)
    }

    fn parse_table_constraint(&mut self) -> Result<TableConstraint> {
        let name = if self.accept_keyword("CONSTRAINT") {
            Some(self.expect_ident()?)
        } else {
            None
        };
        if self.accept_keyword("PRIMARY") {
            self.expect_keyword("KEY")?;
            let columns = self.parse_paren_name_list()?;
            return Ok(TableConstraint::PrimaryKey { name, columns });
        }
        if self.accept_keyword("FOREIGN") {
            self.expect_keyword("KEY")?;
            let columns = self.parse_paren_name_list()?;
            self.expect_keyword("REFERENCES")?;
            let foreign_table = self.expect_ident()?;
            let referred_columns = self.parse_paren_name_list()?;
            return Ok(TableConstraint::ForeignKey {
                name,
                columns,
                foreign_table,
                referred_columns,
            });
        }
        if self.accept_keyword("CHECK") {
            self.expect(&TokenKind::LParen)?;
            let expr = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(TableConstraint::Check { name, expr });
        }
        Err(ParseError::at(
            format!(
                "expected PRIMARY KEY, FOREIGN KEY or CHECK, found {}",
                self.peek()
            ),
            self.offset(),
        ))
    }

    fn parse_paren_name_list(&mut self) -> Result<Vec<String>> {
        self.expect(&TokenKind::LParen)?;
        let mut names = Vec::new();
        loop {
            names.push(self.expect_ident()?);
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(names)
    }

    fn parse_create_function(&mut self) -> Result<Statement> {
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut arg_types = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                arg_types.push(self.parse_data_type()?);
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.expect_keyword("RETURNS")?;
        let returns = self.parse_data_type()?;
        self.expect_keyword("AS")?;
        let body = match self.peek().clone() {
            TokenKind::StringLit(s) => {
                self.advance();
                s
            }
            other => {
                return Err(ParseError::at(
                    format!("expected function body string, found {other}"),
                    self.offset(),
                ))
            }
        };
        self.expect_keyword("LANGUAGE")?;
        let language = match self.peek().clone() {
            TokenKind::Ident(l) => {
                self.advance();
                l
            }
            other => {
                return Err(ParseError::at(
                    format!("expected language name, found {other}"),
                    self.offset(),
                ))
            }
        };
        let immutable = self.accept_keyword("IMMUTABLE");
        Ok(Statement::CreateFunction(CreateFunction {
            name,
            arg_types,
            returns,
            body,
            language,
            immutable,
        }))
    }

    fn parse_drop(&mut self) -> Result<Statement> {
        self.expect_keyword("DROP")?;
        let is_view = if self.accept_keyword("TABLE") {
            false
        } else {
            self.expect_keyword("VIEW")?;
            true
        };
        let if_exists = if self.accept_keyword("IF") {
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        Ok(if is_view {
            Statement::DropView { name, if_exists }
        } else {
            Statement::DropTable { name, if_exists }
        })
    }

    // -- DML ----------------------------------------------------------------

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.expect_ident()?;
        let columns =
            if matches!(self.peek(), TokenKind::LParen) && !self.keyword_ahead_is(1, "SELECT") {
                self.parse_paren_name_list()?
            } else {
                Vec::new()
            };
        let source = if self.accept_keyword("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect(&TokenKind::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.accept(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                rows.push(row);
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            let wrapped = self.accept(&TokenKind::LParen);
            let q = self.parse_query()?;
            if wrapped {
                self.expect(&TokenKind::RParen)?;
            }
            InsertSource::Query(Box::new(q))
        };
        Ok(Statement::Insert(Insert {
            table,
            columns,
            source,
        }))
    }

    fn parse_update(&mut self) -> Result<Statement> {
        self.expect_keyword("UPDATE")?;
        let table = self.expect_ident()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect(&TokenKind::Eq)?;
            let value = self.parse_expr()?;
            assignments.push((col, value));
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }
        let selection = if self.accept_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            selection,
        }))
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;
        let selection = if self.accept_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete { table, selection }))
    }

    // -- DCL + scope --------------------------------------------------------

    fn parse_privileges(&mut self) -> Result<Vec<Privilege>> {
        let mut privileges = Vec::new();
        loop {
            let p = if self.accept_keyword("READ") {
                Privilege::Read
            } else if self.accept_keyword("INSERT") {
                Privilege::Insert
            } else if self.accept_keyword("UPDATE") {
                Privilege::Update
            } else if self.accept_keyword("DELETE") {
                Privilege::Delete
            } else if self.accept_keyword("GRANT") {
                Privilege::Grant
            } else if self.accept_keyword("REVOKE") {
                Privilege::Revoke
            } else if self.accept_keyword("ALL") {
                privileges.extend([
                    Privilege::Read,
                    Privilege::Insert,
                    Privilege::Update,
                    Privilege::Delete,
                ]);
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
                continue;
            } else {
                return Err(ParseError::at(
                    format!("expected privilege, found {}", self.peek()),
                    self.offset(),
                ));
            };
            privileges.push(p);
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }
        Ok(privileges)
    }

    fn parse_grant_object(&mut self) -> Result<GrantObject> {
        self.expect_keyword("ON")?;
        if let TokenKind::Ident(name) = self.peek().clone() {
            if name.eq_ignore_ascii_case("DATABASE") {
                self.advance();
                return Ok(GrantObject::Database);
            }
            self.advance();
            return Ok(GrantObject::Table(name));
        }
        Err(ParseError::at(
            format!("expected table name or DATABASE, found {}", self.peek()),
            self.offset(),
        ))
    }

    fn parse_grantee(&mut self) -> Result<Grantee> {
        if self.accept_keyword("ALL") {
            return Ok(Grantee::All);
        }
        let id = self.expect_number_i64()?;
        Ok(Grantee::Tenant(id))
    }

    fn parse_grant(&mut self) -> Result<Statement> {
        self.expect_keyword("GRANT")?;
        let privileges = self.parse_privileges()?;
        let object = self.parse_grant_object()?;
        self.expect_keyword("TO")?;
        let grantee = self.parse_grantee()?;
        Ok(Statement::Grant(Grant {
            privileges,
            object,
            grantee,
        }))
    }

    fn parse_revoke(&mut self) -> Result<Statement> {
        self.expect_keyword("REVOKE")?;
        let privileges = self.parse_privileges()?;
        let object = self.parse_grant_object()?;
        self.expect_keyword("FROM")?;
        let grantee = self.parse_grantee()?;
        Ok(Statement::Revoke(Revoke {
            privileges,
            object,
            grantee,
        }))
    }

    fn parse_set_scope(&mut self) -> Result<Statement> {
        self.expect_keyword("SET")?;
        self.expect_keyword("SCOPE")?;
        self.expect(&TokenKind::Eq)?;
        // The scope expression arrives either as a quoted string
        // (`SET SCOPE = "IN (1,2)"` / `SET SCOPE = 'IN (1,2)'`) or inline.
        let spec_text = match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                s
            }
            TokenKind::StringLit(s) => {
                self.advance();
                s
            }
            _ => {
                // Inline form: parse directly from the remaining tokens.
                return Ok(Statement::SetScope(self.parse_scope_spec()?));
            }
        };
        let mut inner = Parser::new(&spec_text)?;
        let spec = inner.parse_scope_spec()?;
        inner.expect_eof()?;
        Ok(Statement::SetScope(spec))
    }

    /// Parse a scope specification: `IN (...)` or `FROM ... [WHERE ...]`.
    pub fn parse_scope_spec(&mut self) -> Result<ScopeSpec> {
        if self.accept_keyword("IN") {
            self.expect(&TokenKind::LParen)?;
            let mut ids = Vec::new();
            if !matches!(self.peek(), TokenKind::RParen) {
                loop {
                    ids.push(self.expect_number_i64()?);
                    if !self.accept(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            if ids.is_empty() {
                return Ok(ScopeSpec::AllTenants);
            }
            return Ok(ScopeSpec::Simple(ids));
        }
        if self.accept_keyword("FROM") {
            let mut from = Vec::new();
            loop {
                from.push(self.parse_table_ref()?);
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
            let selection = if self.accept_keyword("WHERE") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(ScopeSpec::Complex { from, selection });
        }
        Err(ParseError::at(
            format!(
                "expected IN or FROM in scope expression, found {}",
                self.peek()
            ),
            self.offset(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let q =
            parse_query("SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY a DESC LIMIT 10").unwrap();
        assert_eq!(q.body.projection.len(), 2);
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_joins_and_aliases() {
        let q = parse_query(
            "SELECT E.E_name, R.R_name FROM Employees E JOIN Roles R ON E.E_role_id = R.R_role_id",
        )
        .unwrap();
        assert_eq!(q.body.from.len(), 1);
        assert!(matches!(q.body.from[0], TableRef::Join { .. }));
    }

    #[test]
    fn parses_left_outer_join() {
        let q = parse_query(
            "SELECT c_custkey, o_orderkey FROM customer LEFT OUTER JOIN orders ON c_custkey = o_custkey",
        )
        .unwrap();
        match &q.body.from[0] {
            TableRef::Join { kind, .. } => assert_eq!(*kind, JoinKind::Left),
            _ => panic!("expected join"),
        }
    }

    #[test]
    fn parses_derived_table() {
        let q = parse_query("SELECT x.a FROM (SELECT a FROM t) AS x").unwrap();
        assert!(matches!(q.body.from[0], TableRef::Derived { .. }));
    }

    #[test]
    fn question_mark_parameters_auto_number_in_order() {
        let q = parse_query("SELECT a FROM t WHERE a > ? AND b BETWEEN ? AND ?").unwrap();
        let mut max = None;
        crate::visit::max_param_index_query(&q, &mut max);
        assert_eq!(max, Some(2));
        assert_eq!(crate::visit::param_count_query(&q), 3);
        // The printed form uses explicit positions and round-trips.
        let printed = q.to_string();
        assert!(
            printed.contains("$1") && printed.contains("$3"),
            "{printed}"
        );
        assert_eq!(parse_query(&printed).unwrap(), q);
    }

    #[test]
    fn dollar_parameters_are_one_based_and_cannot_mix_with_question_marks() {
        let e = parse_expression("a = $2").unwrap();
        match e {
            Expr::BinaryOp { right, .. } => assert_eq!(*right, Expr::Param(1)),
            other => panic!("expected comparison, got {other:?}"),
        }
        // Mixing styles would silently alias positions; it is rejected in
        // either order (matching PostgreSQL).
        assert!(parse_query("SELECT a FROM t WHERE a = $2 AND b = ?").is_err());
        assert!(parse_query("SELECT a FROM t WHERE a = ? AND b = $1").is_err());
        // `$0` is invalid, as is a bare `$`.
        assert!(parse_expression("a = $0").is_err());
        assert!(parse_expression("a = $").is_err());
    }

    #[test]
    fn parameters_inside_subqueries_count_toward_the_statement() {
        let q = parse_query("SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE c = ?) AND d = ?")
            .unwrap();
        assert_eq!(crate::visit::param_count_query(&q), 2);
    }

    #[test]
    fn parses_group_by_having() {
        let q = parse_query("SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 3")
            .unwrap();
        assert_eq!(q.body.group_by.len(), 1);
        assert!(q.body.having.is_some());
    }

    #[test]
    fn parses_aggregates_and_distinct() {
        let q = parse_query("SELECT COUNT(DISTINCT a), SUM(b * (1 - c)) FROM t").unwrap();
        match &q.body.projection[0] {
            SelectItem::Expr {
                expr: Expr::Function(f),
                ..
            } => {
                assert!(f.distinct);
                assert_eq!(f.name.to_ascii_uppercase(), "COUNT");
            }
            _ => panic!("expected function"),
        }
    }

    #[test]
    fn parses_case_expression() {
        let e =
            parse_expression("CASE WHEN o_orderpriority = '1-URGENT' THEN 1 ELSE 0 END").unwrap();
        assert!(matches!(e, Expr::Case { .. }));
    }

    #[test]
    fn parses_exists_and_not_exists() {
        let e = parse_expression("EXISTS (SELECT 1 FROM t WHERE t.a = u.a)").unwrap();
        assert!(matches!(e, Expr::Exists { negated: false, .. }));
        let e = parse_expression("NOT EXISTS (SELECT 1 FROM t)").unwrap();
        assert!(matches!(e, Expr::Exists { negated: true, .. }));
    }

    #[test]
    fn parses_in_subquery_and_in_list() {
        let e = parse_expression("a IN (SELECT b FROM t)").unwrap();
        assert!(matches!(e, Expr::InSubquery { negated: false, .. }));
        let e = parse_expression("a NOT IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
    }

    #[test]
    fn parses_between_and_like() {
        let e = parse_expression("a BETWEEN 1 AND 10").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = parse_expression("p_type NOT LIKE '%BRASS'").unwrap();
        assert!(matches!(e, Expr::Like { negated: true, .. }));
    }

    #[test]
    fn parses_date_and_interval_arithmetic() {
        let e = parse_expression("l_shipdate < DATE '1995-01-01' + INTERVAL '1' YEAR").unwrap();
        match e {
            Expr::BinaryOp { op, .. } => assert_eq!(op, BinaryOperator::Lt),
            _ => panic!("expected comparison"),
        }
    }

    #[test]
    fn parses_extract_and_substring() {
        let e = parse_expression("EXTRACT(YEAR FROM o_orderdate)").unwrap();
        assert!(matches!(
            e,
            Expr::Extract {
                field: DateField::Year,
                ..
            }
        ));
        let e = parse_expression("SUBSTRING(c_phone FROM 1 FOR 2)").unwrap();
        assert!(matches!(e, Expr::Substring { .. }));
        let e = parse_expression("SUBSTRING(c_phone, 1, 2)").unwrap();
        assert!(matches!(e, Expr::Substring { .. }));
    }

    #[test]
    fn parses_scalar_subquery() {
        let e =
            parse_expression("ps_supplycost = (SELECT MIN(ps_supplycost) FROM partsupp)").unwrap();
        match e {
            Expr::BinaryOp { right, .. } => assert!(matches!(*right, Expr::ScalarSubquery(_))),
            _ => panic!("expected comparison"),
        }
    }

    #[test]
    fn parses_mtsql_create_table() {
        let stmt = parse_statement(
            "CREATE TABLE Employees SPECIFIC (
                E_emp_id INTEGER NOT NULL SPECIFIC,
                E_name VARCHAR(25) NOT NULL COMPARABLE,
                E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
                E_age INTEGER NOT NULL COMPARABLE,
                CONSTRAINT pk_emp PRIMARY KEY (E_emp_id),
                CONSTRAINT fk_emp FOREIGN KEY (E_role_id) REFERENCES Roles (R_role_id)
            )",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.generality, TableGenerality::TenantSpecific);
                assert_eq!(ct.columns.len(), 4);
                assert_eq!(
                    ct.columns[2].comparability,
                    Some(Comparability::Convertible {
                        to_universal: "currencyToUniversal".into(),
                        from_universal: "currencyFromUniversal".into()
                    })
                );
                assert_eq!(ct.constraints.len(), 2);
            }
            _ => panic!("expected CREATE TABLE"),
        }
    }

    #[test]
    fn parses_create_function() {
        let stmt = parse_statement(
            "CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
             AS 'SELECT CT_to_universal*$1 FROM Tenant' LANGUAGE SQL IMMUTABLE",
        )
        .unwrap();
        match stmt {
            Statement::CreateFunction(f) => {
                assert_eq!(f.name, "currencyToUniversal");
                assert!(f.immutable);
                assert_eq!(f.arg_types.len(), 2);
            }
            _ => panic!("expected CREATE FUNCTION"),
        }
    }

    #[test]
    fn parses_grant_and_revoke() {
        let stmt = parse_statement("GRANT READ ON Employees TO 42").unwrap();
        match stmt {
            Statement::Grant(g) => {
                assert_eq!(g.privileges, vec![Privilege::Read]);
                assert_eq!(g.object, GrantObject::Table("Employees".into()));
                assert_eq!(g.grantee, Grantee::Tenant(42));
            }
            _ => panic!("expected GRANT"),
        }
        let stmt = parse_statement("REVOKE READ, UPDATE ON Employees FROM ALL").unwrap();
        assert!(matches!(stmt, Statement::Revoke(_)));
    }

    #[test]
    fn parses_simple_scope() {
        let stmt = parse_statement("SET SCOPE = \"IN (1,3,42)\"").unwrap();
        assert_eq!(stmt, Statement::SetScope(ScopeSpec::Simple(vec![1, 3, 42])));
    }

    #[test]
    fn parses_empty_scope_as_all_tenants() {
        let stmt = parse_statement("SET SCOPE = \"IN ()\"").unwrap();
        assert_eq!(stmt, Statement::SetScope(ScopeSpec::AllTenants));
    }

    #[test]
    fn parses_complex_scope() {
        let stmt =
            parse_statement("SET SCOPE = \"FROM Employees WHERE E_salary > 180000\"").unwrap();
        match stmt {
            Statement::SetScope(ScopeSpec::Complex { from, selection }) => {
                assert_eq!(from.len(), 1);
                assert!(selection.is_some());
            }
            _ => panic!("expected complex scope"),
        }
    }

    #[test]
    fn parses_insert_values_and_query() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Statement::Insert(ins) => match ins.source {
                InsertSource::Values(rows) => assert_eq!(rows.len(), 2),
                _ => panic!("expected VALUES"),
            },
            _ => panic!("expected INSERT"),
        }
        let stmt = parse_statement("INSERT INTO t (a) (SELECT a FROM u WHERE a > 1)").unwrap();
        match stmt {
            Statement::Insert(ins) => assert!(matches!(ins.source, InsertSource::Query(_))),
            _ => panic!("expected INSERT"),
        }
    }

    #[test]
    fn parses_update_and_delete() {
        let stmt = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE c = 3").unwrap();
        match stmt {
            Statement::Update(u) => {
                assert_eq!(u.assignments.len(), 2);
                assert!(u.selection.is_some());
            }
            _ => panic!("expected UPDATE"),
        }
        let stmt = parse_statement("DELETE FROM t WHERE a IS NOT NULL").unwrap();
        assert!(matches!(stmt, Statement::Delete(_)));
    }

    #[test]
    fn parses_create_view_and_drop() {
        let stmt = parse_statement("CREATE VIEW v AS SELECT a FROM t").unwrap();
        assert!(matches!(stmt, Statement::CreateView(_)));
        let stmt = parse_statement("DROP TABLE IF EXISTS t").unwrap();
        assert!(matches!(
            stmt,
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
        let stmt = parse_statement("DROP VIEW v").unwrap();
        assert!(matches!(
            stmt,
            Statement::DropView {
                if_exists: false,
                ..
            }
        ));
    }

    #[test]
    fn parses_multiple_statements() {
        let stmts = parse_statements("SELECT 1; SELECT 2; ").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn operator_precedence_is_sane() {
        // a + b * c parses as a + (b * c)
        let e = parse_expression("a + b * c").unwrap();
        match e {
            Expr::BinaryOp { op, right, .. } => {
                assert_eq!(op, BinaryOperator::Plus);
                assert!(matches!(
                    *right,
                    Expr::BinaryOp {
                        op: BinaryOperator::Multiply,
                        ..
                    }
                ));
            }
            _ => panic!("expected +"),
        }
        // a = 1 AND b = 2 OR c = 3 parses as ((a=1 AND b=2) OR c=3)
        let e = parse_expression("a = 1 AND b = 2 OR c = 3").unwrap();
        match e {
            Expr::BinaryOp { op, .. } => assert_eq!(op, BinaryOperator::Or),
            _ => panic!("expected OR"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("FLY ME TO THE MOON").is_err());
        assert!(parse_query("SELECT FROM WHERE").is_err());
        assert!(parse_expression("a +").is_err());
    }

    #[test]
    fn count_star() {
        let e = parse_expression("COUNT(*)").unwrap();
        match e {
            Expr::Function(f) => {
                assert_eq!(f.name.to_ascii_uppercase(), "COUNT");
                assert!(f.args.is_empty());
            }
            _ => panic!("expected COUNT(*)"),
        }
    }
}

//! Small AST traversal utilities shared by the engine and the rewriter.

use crate::ast::*;

/// Does this expression contain a sub-query anywhere (outside of nested
/// sub-query scopes of its own)?
pub fn contains_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => true,
        Expr::BinaryOp { left, right, .. } => contains_subquery(left) || contains_subquery(right),
        Expr::UnaryOp { expr, .. } => contains_subquery(expr),
        Expr::Function(f) => f.args.iter().any(contains_subquery),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            operand.as_deref().is_some_and(contains_subquery)
                || when_then
                    .iter()
                    .any(|(w, t)| contains_subquery(w) || contains_subquery(t))
                || else_expr.as_deref().is_some_and(contains_subquery)
        }
        Expr::InList { expr, list, .. } => {
            contains_subquery(expr) || list.iter().any(contains_subquery)
        }
        Expr::Between {
            expr, low, high, ..
        } => contains_subquery(expr) || contains_subquery(low) || contains_subquery(high),
        Expr::Like { expr, pattern, .. } => contains_subquery(expr) || contains_subquery(pattern),
        Expr::IsNull { expr, .. } => contains_subquery(expr),
        Expr::Extract { expr, .. } => contains_subquery(expr),
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            contains_subquery(expr)
                || contains_subquery(start)
                || length.as_deref().is_some_and(contains_subquery)
        }
        Expr::Cast { expr, .. } => contains_subquery(expr),
        Expr::Column(_) | Expr::Literal(_) | Expr::Param(_) => false,
    }
}

/// Does this expression contain a parameter placeholder anywhere outside of
/// nested sub-queries? (Parameters inside a sub-query still belong to the
/// same statement-wide parameter list, so those are counted too.)
pub fn contains_param(expr: &Expr) -> bool {
    let mut max = None;
    max_param_index(expr, &mut max);
    max.is_some()
}

/// Track the highest parameter index used anywhere in an expression,
/// *including* inside sub-queries — parameters are numbered per statement.
pub fn max_param_index(expr: &Expr, max: &mut Option<usize>) {
    let mut bump = |i: usize| {
        *max = Some(max.map_or(i, |m: usize| m.max(i)));
    };
    match expr {
        Expr::Param(i) => bump(*i),
        Expr::Column(_) | Expr::Literal(_) => {}
        Expr::BinaryOp { left, right, .. } => {
            max_param_index(left, max);
            max_param_index(right, max);
        }
        Expr::UnaryOp { expr, .. } => max_param_index(expr, max),
        Expr::Function(f) => f.args.iter().for_each(|a| max_param_index(a, max)),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            if let Some(o) = operand {
                max_param_index(o, max);
            }
            for (w, t) in when_then {
                max_param_index(w, max);
                max_param_index(t, max);
            }
            if let Some(e) = else_expr {
                max_param_index(e, max);
            }
        }
        Expr::InList { expr, list, .. } => {
            max_param_index(expr, max);
            list.iter().for_each(|i| max_param_index(i, max));
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            max_param_index(expr, max);
            max_param_index(low, max);
            max_param_index(high, max);
        }
        Expr::Like { expr, pattern, .. } => {
            max_param_index(expr, max);
            max_param_index(pattern, max);
        }
        Expr::IsNull { expr, .. } => max_param_index(expr, max),
        Expr::Extract { expr, .. } => max_param_index(expr, max),
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            max_param_index(expr, max);
            max_param_index(start, max);
            if let Some(l) = length {
                max_param_index(l, max);
            }
        }
        Expr::Cast { expr, .. } => max_param_index(expr, max),
        Expr::InSubquery { expr, query, .. } => {
            max_param_index(expr, max);
            max_param_index_query(query, max);
        }
        Expr::Exists { query, .. } => max_param_index_query(query, max),
        Expr::ScalarSubquery(q) => max_param_index_query(q, max),
    }
}

/// Track the highest parameter index used anywhere in a query.
pub fn max_param_index_query(query: &Query, max: &mut Option<usize>) {
    fn visit_table_ref(t: &TableRef, max: &mut Option<usize>) {
        match t {
            TableRef::Table { .. } => {}
            TableRef::Derived { query, .. } => max_param_index_query(query, max),
            TableRef::Join {
                left, right, on, ..
            } => {
                visit_table_ref(left, max);
                visit_table_ref(right, max);
                if let Some(cond) = on {
                    max_param_index(cond, max);
                }
            }
        }
    }
    for item in &query.body.projection {
        if let SelectItem::Expr { expr, .. } = item {
            max_param_index(expr, max);
        }
    }
    for t in &query.body.from {
        visit_table_ref(t, max);
    }
    if let Some(sel) = &query.body.selection {
        max_param_index(sel, max);
    }
    for g in &query.body.group_by {
        max_param_index(g, max);
    }
    if let Some(h) = &query.body.having {
        max_param_index(h, max);
    }
    for o in &query.order_by {
        max_param_index(&o.expr, max);
    }
}

/// Number of parameter slots a query needs bound: the highest parameter
/// index used anywhere plus one (0 for a parameter-free query).
pub fn param_count_query(query: &Query) -> usize {
    let mut max = None;
    max_param_index_query(query, &mut max);
    max.map_or(0, |m| m + 1)
}

/// Collect every column reference of an expression. Columns inside sub-queries
/// belong to the sub-query's scope and are *not* collected; only the left-hand
/// expression of `IN (subquery)` is.
pub fn collect_columns(expr: &Expr, out: &mut Vec<ColumnRef>) {
    match expr {
        Expr::Column(c) => out.push(c.clone()),
        Expr::Literal(_) | Expr::Param(_) => {}
        Expr::BinaryOp { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::UnaryOp { expr, .. } => collect_columns(expr, out),
        Expr::Function(f) => f.args.iter().for_each(|a| collect_columns(a, out)),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_columns(o, out);
            }
            for (w, t) in when_then {
                collect_columns(w, out);
                collect_columns(t, out);
            }
            if let Some(e) = else_expr {
                collect_columns(e, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_columns(expr, out);
            list.iter().for_each(|i| collect_columns(i, out));
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_columns(expr, out);
            collect_columns(low, out);
            collect_columns(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_columns(expr, out);
            collect_columns(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_columns(expr, out),
        Expr::Extract { expr, .. } => collect_columns(expr, out),
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            collect_columns(expr, out);
            collect_columns(start, out);
            if let Some(l) = length {
                collect_columns(l, out);
            }
        }
        Expr::Cast { expr, .. } => collect_columns(expr, out),
        Expr::InSubquery { expr, .. } => collect_columns(expr, out),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
    }
}

/// Collect the distinct aggregate function calls appearing in an expression.
/// Aggregates inside sub-queries belong to the sub-query and are *not*
/// collected.
pub fn collect_aggregate_calls(expr: &Expr, out: &mut Vec<FunctionCall>) {
    match expr {
        Expr::Function(f) if f.is_aggregate() => {
            if !out.contains(f) {
                out.push(f.clone());
            }
        }
        Expr::Function(f) => f.args.iter().for_each(|a| collect_aggregate_calls(a, out)),
        Expr::BinaryOp { left, right, .. } => {
            collect_aggregate_calls(left, out);
            collect_aggregate_calls(right, out);
        }
        Expr::UnaryOp { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_aggregate_calls(o, out);
            }
            for (w, t) in when_then {
                collect_aggregate_calls(w, out);
                collect_aggregate_calls(t, out);
            }
            if let Some(e) = else_expr {
                collect_aggregate_calls(e, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregate_calls(expr, out);
            list.iter().for_each(|i| collect_aggregate_calls(i, out));
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(low, out);
            collect_aggregate_calls(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Extract { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(start, out);
            if let Some(l) = length {
                collect_aggregate_calls(l, out);
            }
        }
        Expr::Cast { expr, .. } => collect_aggregate_calls(expr, out),
        // Aggregates inside sub-queries belong to the sub-query.
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => {}
        Expr::Column(_) | Expr::Literal(_) | Expr::Param(_) => {}
    }
}

/// Break a predicate into its top-level `AND` conjuncts.
pub fn split_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::BinaryOp {
            left,
            op: BinaryOperator::And,
            right,
        } => {
            split_conjuncts(left, out);
            split_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_expression;

    #[test]
    fn collects_columns_outside_subqueries() {
        let e = parse_expression("a + b * f(c) AND d IN (SELECT x FROM t WHERE y = 1)").unwrap();
        let mut cols = Vec::new();
        collect_columns(&e, &mut cols);
        let names: Vec<&str> = cols.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn detects_subqueries() {
        assert!(contains_subquery(
            &parse_expression("EXISTS (SELECT 1 FROM t)").unwrap()
        ));
        assert!(!contains_subquery(&parse_expression("a < b").unwrap()));
    }

    #[test]
    fn splits_conjuncts() {
        let e = parse_expression("a = 1 AND b = 2 AND c = 3").unwrap();
        let mut out = Vec::new();
        split_conjuncts(&e, &mut out);
        assert_eq!(out.len(), 3);
    }
}

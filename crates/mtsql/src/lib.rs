//! SQL + MTSQL front-end: lexer, abstract syntax tree, recursive-descent
//! parser and SQL pretty-printer.
//!
//! MTSQL (from *MTBase: Optimizing Cross-Tenant Database Queries*, EDBT 2018)
//! extends plain SQL with
//!
//! * `SET SCOPE = "..."` connection statements that select the *dataset* `D`
//!   of tenants a statement applies to (either a simple `IN (...)` list or a
//!   complex sub-query scope),
//! * `CREATE TABLE ... GLOBAL | SPECIFIC` table generality,
//! * per-column comparability annotations `COMPARABLE`, `SPECIFIC` and
//!   `CONVERTIBLE @toUniversal @fromUniversal`,
//! * `GRANT`/`REVOKE` statements whose meaning depends on the issuing tenant
//!   `C` and on `D`.
//!
//! The same [`ast`] types describe both MTSQL input and the plain SQL output
//! of the rewrite algorithm in the `mtrewrite` crate; plain SQL is simply the
//! subset that uses none of the MT-specific constructs.
//!
//! # Example
//!
//! ```
//! use mtsql::parse_statement;
//! use mtsql::ast::Statement;
//!
//! let stmt = parse_statement(
//!     "SELECT E_name, AVG(E_salary) AS avg_sal \
//!      FROM Employees WHERE E_age >= 45 GROUP BY E_name",
//! )
//! .unwrap();
//! match stmt {
//!     Statement::Select(q) => assert_eq!(q.body.projection.len(), 2),
//!     _ => unreachable!(),
//! }
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;
pub mod visit;

pub use ast::{Expr, Query, Select, Statement};
pub use error::{ParseError, Result};
pub use parser::{parse_expression, parse_query, parse_statement, parse_statements, Parser};

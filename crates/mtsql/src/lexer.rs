//! Hand-written lexer turning (MT)SQL text into a token stream.

use crate::error::{ParseError, Result};
use crate::token::{is_keyword, Token, TokenKind};

/// Tokenize the full input, returning the token stream terminated by
/// [`TokenKind::Eof`].
///
/// Comments (`-- ...` until end of line) and whitespace are skipped.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let offset = self.pos;
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    offset,
                });
                return Ok(tokens);
            };
            let kind = match c {
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b',' => self.single(TokenKind::Comma),
                b';' => self.single(TokenKind::Semicolon),
                b'.' => self.single(TokenKind::Dot),
                b'*' => self.single(TokenKind::Star),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'/' => self.single(TokenKind::Slash),
                b'%' => self.single(TokenKind::Percent),
                b'=' => self.single(TokenKind::Eq),
                b'|' => {
                    self.pos += 1;
                    if self.peek() == Some(b'|') {
                        self.pos += 1;
                        TokenKind::Concat
                    } else {
                        return Err(ParseError::at("expected `||`", offset));
                    }
                }
                b'!' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        TokenKind::NotEq
                    } else {
                        return Err(ParseError::at("expected `!=`", offset));
                    }
                }
                b'<' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'=') => {
                            self.pos += 1;
                            TokenKind::LtEq
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            TokenKind::NotEq
                        }
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        TokenKind::GtEq
                    } else {
                        TokenKind::Gt
                    }
                }
                b'\'' => self.string_literal()?,
                b'@' => {
                    self.pos += 1;
                    let ident = self.identifier_text();
                    if ident.is_empty() {
                        return Err(ParseError::at("expected identifier after `@`", offset));
                    }
                    TokenKind::AtIdent(ident)
                }
                b'?' => self.single(TokenKind::Question),
                b'$' => {
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        self.pos += 1;
                    }
                    if start == self.pos {
                        return Err(ParseError::at(
                            "expected parameter number after `$`",
                            offset,
                        ));
                    }
                    let n: u32 = self.input[start..self.pos].parse().map_err(|_| {
                        ParseError::at("parameter number out of range after `$`", offset)
                    })?;
                    TokenKind::DollarParam(n)
                }
                b'"' => self.quoted_identifier()?,
                c if c.is_ascii_digit() => self.number(),
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let word = self.identifier_text();
                    if is_keyword(&word) {
                        TokenKind::Keyword(word.to_ascii_uppercase())
                    } else {
                        TokenKind::Ident(word)
                    }
                }
                other => {
                    return Err(ParseError::at(
                        format!("unexpected character `{}`", other as char),
                        offset,
                    ))
                }
            };
            tokens.push(Token { kind, offset });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn identifier_text(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.input[start..self.pos].to_string()
    }

    fn number(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        TokenKind::Number(self.input[start..self.pos].to_string())
    }

    fn string_literal(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(ParseError::at("unterminated string literal", start)),
                Some(b'\'') => {
                    if self.peek2() == Some(b'\'') {
                        out.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(TokenKind::StringLit(out));
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 is copied through verbatim.
                    let ch_start = self.pos;
                    let ch = self.input[ch_start..].chars().next().expect("valid utf8");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn quoted_identifier(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let ident_start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let text = self.input[ident_start..self.pos].to_string();
                self.pos += 1;
                return Ok(TokenKind::Ident(text));
            }
            self.pos += 1;
        }
        Err(ParseError::at("unterminated quoted identifier", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_simple_select() {
        let toks = kinds("SELECT a, b FROM t WHERE a >= 10;");
        assert_eq!(toks[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(toks[1], TokenKind::Ident("a".into()));
        assert_eq!(toks[2], TokenKind::Comma);
        assert!(toks.contains(&TokenKind::GtEq));
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = kinds("select From wHeRe");
        assert_eq!(toks[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(toks[1], TokenKind::Keyword("FROM".into()));
        assert_eq!(toks[2], TokenKind::Keyword("WHERE".into()));
    }

    #[test]
    fn numbers_ints_and_decimals() {
        let toks = kinds("42 3.14 0.5");
        assert_eq!(toks[0], TokenKind::Number("42".into()));
        assert_eq!(toks[1], TokenKind::Number("3.14".into()));
        assert_eq!(toks[2], TokenKind::Number("0.5".into()));
    }

    #[test]
    fn string_literal_with_escaped_quote() {
        let toks = kinds("'it''s'");
        assert_eq!(toks[0], TokenKind::StringLit("it's".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("SELECT a -- trailing comment\nFROM t");
        assert_eq!(toks.len(), 5); // SELECT a FROM t EOF
    }

    #[test]
    fn at_identifier_for_conversion_functions() {
        let toks = kinds("CONVERTIBLE @currencyToUniversal @currencyFromUniversal");
        assert_eq!(toks[1], TokenKind::AtIdent("currencyToUniversal".into()));
        assert_eq!(toks[2], TokenKind::AtIdent("currencyFromUniversal".into()));
    }

    #[test]
    fn operators() {
        let toks = kinds("<> != <= >= < > = || + - * / %");
        assert_eq!(toks[0], TokenKind::NotEq);
        assert_eq!(toks[1], TokenKind::NotEq);
        assert_eq!(toks[2], TokenKind::LtEq);
        assert_eq!(toks[3], TokenKind::GtEq);
        assert_eq!(toks[4], TokenKind::Lt);
        assert_eq!(toks[5], TokenKind::Gt);
        assert_eq!(toks[6], TokenKind::Eq);
        assert_eq!(toks[7], TokenKind::Concat);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("SELECT 'oops").is_err());
    }

    #[test]
    fn quoted_identifier() {
        let toks = kinds("\"Weird Name\"");
        assert_eq!(toks[0], TokenKind::Ident("Weird Name".into()));
    }

    #[test]
    fn offsets_point_at_token_start() {
        let toks = tokenize("SELECT  a").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 8);
    }
}

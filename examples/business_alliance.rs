//! Scenario 1 of the paper (§6.2): a business alliance of ten small
//! enterprises sharing one MT-H database with uniform data shares. Client 1
//! analyses the joint order book and compares the optimization levels.
//!
//! Run with `cargo run --release --example business_alliance`.

use std::time::Instant;

use mtbase::EngineConfig;
use mth::params::{MthConfig, TenantDistribution};
use mth::{loader, queries};
use mtrewrite::OptLevel;

fn main() {
    let config = MthConfig {
        scale: 0.1,
        tenants: 10,
        distribution: TenantDistribution::Uniform,
        seed: 7,
    };
    println!(
        "loading MT-H (scale {}, {} tenants, uniform) ...",
        config.scale, config.tenants
    );
    let dep = loader::load(config, EngineConfig::postgres_like());

    let mut conn = dep.server.connect(1);
    conn.execute("SET SCOPE = \"IN ()\"")
        .expect("scope = all tenants");

    // The alliance-wide pricing summary (Q1) at increasing optimization levels.
    println!("\nQ1 (pricing summary across all 10 companies):");
    for level in [
        OptLevel::Canonical,
        OptLevel::O1,
        OptLevel::O3,
        OptLevel::O4,
    ] {
        conn.set_opt_level(level);
        dep.server.reset_stats();
        let start = Instant::now();
        let rs = conn.query(&queries::query(1)).expect("Q1");
        let elapsed = start.elapsed();
        let stats = dep.server.stats();
        println!(
            "  {:<10} {:>8.1} ms   {:>6} conversion calls ({} cached)   {} groups",
            level.label(),
            elapsed.as_secs_f64() * 1000.0,
            stats.udf_calls,
            stats.udf_cache_hits,
            rs.rows.len()
        );
    }

    // A cross-tenant revenue ranking (Q5-style) in the client's currency.
    conn.set_opt_level(OptLevel::O4);
    let revenue = conn
        .query(
            "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM customer, orders, lineitem, nation \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND c_nationkey = n_nationkey \
             GROUP BY n_name ORDER BY revenue DESC LIMIT 5",
        )
        .expect("revenue ranking");
    println!("\ntop-5 nations by alliance-wide revenue (client currency):");
    for row in &revenue.rows {
        println!("  {:<20} {:>16}", row[0], row[1]);
    }

    // Each member can still only see its own share by default.
    let mut member = dep.server.connect(3);
    let own = member
        .query("SELECT COUNT(*) FROM orders")
        .expect("own orders");
    println!(
        "\ntenant 3, default scope: {} own orders visible",
        own.rows[0][0]
    );
}

//! EXPLAIN explorer: print the physical plan MTBase executes for an MTSQL
//! query at every optimization level — the operator DAG with pushed-down
//! conjuncts, partition-pruning counts and parallel-scan eligibility.
//!
//! Run with `cargo run --example explain_explorer` or pass your own query
//! (and optionally a scope):
//!
//! ```text
//! cargo run --example explain_explorer -- "SELECT SUM(l_extendedprice) AS s FROM lineitem"
//! ```

use mtbase::EngineConfig;
use mth::params::MthConfig;
use mth::{loader, queries};
use mtrewrite::OptLevel;

fn main() {
    let query = std::env::args().nth(1).unwrap_or_else(|| queries::query(6));

    let dep = loader::load(
        MthConfig {
            scale: 0.05,
            tenants: 4,
            ..MthConfig::default()
        },
        EngineConfig::postgres_like().with_parallel_scan(4),
    );

    let mut conn = dep.server.connect(1);
    conn.execute("SET SCOPE = \"IN (1, 2)\"")
        .expect("scope = tenants 1 and 2");

    println!("MTSQL input:\n  {query}\n");
    for level in OptLevel::ALL {
        conn.set_opt_level(level);
        let rs = conn.query(&format!("EXPLAIN {query}")).expect("explain");
        println!("== {} ==", level.label());
        for row in &rs.rows {
            println!("  {}", row[0].as_str().unwrap_or_default());
        }
        println!();
    }
}

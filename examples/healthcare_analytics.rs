//! Scenario 2 of the paper (§6.2): a large shared database with many tenants
//! of very different sizes (Zipf distribution) — think hospitals and private
//! practices — queried by a research institution across all tenants.
//!
//! The example also demonstrates a *complex scope*: restricting the dataset
//! `D` to tenants that own at least one high-value order.
//!
//! Run with `cargo run --release --example healthcare_analytics`.

use mtbase::EngineConfig;
use mth::params::{MthConfig, TenantDistribution};
use mth::{loader, queries};
use mtrewrite::OptLevel;

fn main() {
    let config = MthConfig {
        scale: 0.2,
        tenants: 50,
        distribution: TenantDistribution::Zipf,
        seed: 11,
    };
    println!(
        "loading MT-H (scale {}, {} tenants, zipf shares) ...",
        config.scale, config.tenants
    );
    let dep = loader::load(config, EngineConfig::postgres_like());

    // The research institution connects as tenant 1 and analyses everything.
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(OptLevel::O4);
    conn.execute("SET SCOPE = \"IN ()\"")
        .expect("scope = all tenants");

    let per_tenant = dep
        .server
        .raw_query(
            "SELECT ttid, COUNT(*) FROM customer GROUP BY ttid ORDER BY COUNT(*) DESC LIMIT 5",
        )
        .expect("share query");
    println!("\nlargest tenants by customer count (zipf skew):");
    for row in &per_tenant.rows {
        println!("  tenant {:<4} {:>6} customers", row[0], row[1]);
    }

    let q6 = conn.query(&queries::query(6)).expect("Q6");
    println!(
        "\nQ6 revenue across the whole federation (universal format): {}",
        q6.rows[0][0]
    );

    let priorities = conn.query(&queries::query(4)).expect("Q4");
    println!("\nQ4 order priorities across all tenants:");
    for row in &priorities.rows {
        println!("  {:<16} {:>6}", row[0], row[1]);
    }

    // Complex scope: only tenants owning at least one order above 1M (in the
    // client's currency) take part in the study.
    conn.execute("SET SCOPE = \"FROM orders WHERE o_totalprice > 1000000\"")
        .expect("complex scope");
    let focused = conn
        .query("SELECT COUNT(*) AS big_orders FROM orders WHERE o_totalprice > 1000000")
        .expect("focused query");
    println!(
        "\nafter complex scope (tenants with at least one order > 1M): {} qualifying orders",
        focused.rows[0][0]
    );
}

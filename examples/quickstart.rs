//! Quickstart: the running example of the MTBase paper (Figure 2).
//!
//! Two tenants share the `Employees`/`Roles` tables; tenant 0 stores salaries
//! in USD, tenant 1 in EUR. The example shows how the client tenant, the
//! scope (dataset `D`) and grants determine what a query sees and in which
//! format results are presented.
//!
//! Run with `cargo run --example quickstart`.

use mtbase::testkit::running_example_server;
use mtbase::{EngineConfig, OptLevel, Value};

fn main() {
    let server = running_example_server(EngineConfig::postgres_like());

    // By default a tenant only sees her own data (D = {C}).
    let mut conn = server.connect(0);
    let own = conn
        .query("SELECT E_name, E_salary FROM Employees ORDER BY E_salary DESC")
        .expect("query own data");
    println!("tenant 0, default scope (own data only):");
    for row in &own.rows {
        println!("  {:<10} {:>12}", row[0], row[1]);
    }

    // Tenant 1 shares her employees with tenant 0 ...
    let mut owner = server.connect(1);
    owner
        .execute("GRANT READ ON Employees TO 0")
        .expect("grant");
    owner.execute("GRANT READ ON Roles TO 0").expect("grant");

    // ... so tenant 0 can now query the joint dataset. Salaries stored in EUR
    // by tenant 1 are converted to USD, tenant 0's own format.
    conn.execute("SET SCOPE = \"IN (0, 1)\"")
        .expect("set scope");
    let joint = conn
        .query(
            "SELECT E_name, R_name, E_salary FROM Employees, Roles \
             WHERE E_role_id = R_role_id ORDER BY E_salary DESC",
        )
        .expect("cross-tenant query");
    println!("\ntenant 0, scope {{0, 1}} (joint dataset, salaries in USD):");
    for row in &joint.rows {
        println!("  {:<10} {:<12} {:>12}", row[0], row[1], row[2]);
    }

    // The middleware rewrites MTSQL to plain SQL; inspect what is sent to the
    // DBMS at two different optimization levels.
    conn.set_opt_level(OptLevel::Canonical);
    println!(
        "\ncanonical rewrite:\n  {}",
        conn.rewrite_only("SELECT AVG(E_salary) AS avg_sal FROM Employees")
            .unwrap()
    );
    conn.set_opt_level(OptLevel::O4);
    println!(
        "\no4 rewrite (push-up + distribution + inlining):\n  {}",
        conn.rewrite_only("SELECT AVG(E_salary) AS avg_sal FROM Employees")
            .unwrap()
    );

    let avg = conn
        .query("SELECT AVG(E_salary) AS avg_sal FROM Employees")
        .expect("aggregate");
    println!(
        "\naverage salary across both tenants (USD): {}",
        avg.rows[0][0]
    );

    // The prepared API: parse + rewrite + plan once, then re-execute with
    // different parameter bindings — every call after the first serves the
    // whole front-end from the server's plan cache.
    let mut stmt = conn
        .prepare("SELECT E_name, E_salary FROM Employees WHERE E_salary > $1 ORDER BY E_salary")
        .expect("prepare");
    println!("\nprepared: employees above a salary threshold (USD):");
    for threshold in [60_000.0, 120_000.0, 240_000.0] {
        let rs = stmt
            .execute_with(&[Value::Float(threshold)])
            .expect("prepared execute");
        println!("  > {threshold:>9}: {} employee(s)", rs.rows.len());
    }
    let stats = stmt.last_query_stats();
    println!(
        "  last execution: {} plan-cache hit(s), {} miss(es)",
        stats.prepared_cache_hits, stats.prepared_cache_misses
    );

    // Results can also be pulled through a cursor batch-at-a-time. Simple
    // scan–filter–project plans stream without ever materializing the full
    // result; blocking plans (sorts, aggregates — or, as here at o4, the
    // conversion-inlining joins) materialize internally behind the same
    // pull interface.
    let mut scan = conn
        .prepare("SELECT E_name, E_salary FROM Employees WHERE E_salary > $1")
        .expect("prepare scan");
    scan.bind(&[Value::Float(0.0)]).expect("bind");
    let mut cursor = scan.cursor_with_batch(2).expect("cursor");
    println!("\ncursor over all employees, 2 rows per batch:");
    let mut batch_no = 0;
    while let Some(batch) = cursor.next_batch().expect("fetch") {
        batch_no += 1;
        for row in &batch {
            println!("  batch {batch_no}: {:<10} {:>12}", row[0], row[1]);
        }
    }
}

//! Rewrite explorer: print the SQL that MTBase generates for an MTSQL query
//! at every optimization level of the paper (Table 6), together with the
//! number of conversion-function calls the engine actually performs.
//!
//! Run with `cargo run --example rewrite_explorer` or pass your own query:
//!
//! ```text
//! cargo run --example rewrite_explorer -- "SELECT SUM(l_extendedprice) AS s FROM lineitem"
//! ```

use mtbase::EngineConfig;
use mth::loader;
use mth::params::MthConfig;
use mtrewrite::OptLevel;

fn main() {
    let query = std::env::args().nth(1).unwrap_or_else(|| {
        "SELECT l_returnflag, AVG(l_extendedprice) AS avg_price, COUNT(*) AS cnt \
         FROM lineitem WHERE l_extendedprice > 10000 GROUP BY l_returnflag"
            .to_string()
    });

    let dep = loader::load(
        MthConfig {
            scale: 0.05,
            tenants: 4,
            ..MthConfig::default()
        },
        EngineConfig::postgres_like(),
    );

    let mut conn = dep.server.connect(1);
    conn.execute("SET SCOPE = \"IN ()\"")
        .expect("scope = all tenants");

    println!("MTSQL input:\n  {query}\n");
    for level in OptLevel::ALL {
        conn.set_opt_level(level);
        let rewritten = conn.rewrite_only(&query).expect("rewrite");
        dep.server.reset_stats();
        let rows = conn.query(&query).expect("execute").rows.len();
        let stats = dep.server.stats();
        println!("== {} ==", level.label());
        println!("  {rewritten}");
        println!(
            "  -> {rows} rows, {} conversion-function calls ({} served from cache)\n",
            stats.udf_calls, stats.udf_cache_hits
        );
    }
}
